"""Deterministic random-number streams.

Every stochastic component (PEBS imprecision, interleaving jitter,
workload data) draws from its own named stream so that adding randomness
to one component never perturbs another.  All experiments are exactly
reproducible given a seed.
"""

import random

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a stream ``name``.

    Uses a simple FNV-1a mix of the name so the mapping is stable across
    Python versions (``hash()`` is salted and unsuitable).
    """
    h = 0xCBF29CE484222325
    for ch in name:
        h ^= ord(ch)
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return (base_seed * 0x9E3779B97F4A7C15 + h) & 0x7FFFFFFFFFFFFFFF


class RngStreams:
    """A family of independent ``random.Random`` streams under one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Return a new family whose seed is derived from this one."""
        return RngStreams(derive_seed(self.seed, name))
