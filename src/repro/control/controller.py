"""The overload controller: a hysteresis ladder over three knobs.

Modes form a ladder (:data:`ControlMode.LADDER`), mirroring the
``DegradeMode`` idiom of the crash-recovery supervisor but answering a
different question: the crash ladder reacts to *component deaths*, this
one reacts to *load*.  The two compose — a run can be THROTTLED while
the crash supervisor restarts a dead detector — because they actuate
disjoint state: the crash ladder switches pipeline stages off, the
control ladder rescales sampling, cadence and admission.

Per mode, the knob table (each step relative to the configured base):

=============  ==========  ============  ==============================
mode           SAV factor  poll factor   admission budget per interval
=============  ==========  ============  ==============================
NOMINAL        x1          x1            unlimited
THROTTLED      x step      x step        ``budget_records`` x poll factor
SHEDDING       x step^2    x step^2      ``budget_records/4`` x poll factor
PASSTHROUGH    x step^3    x step^3      0 (monitoring parked)
=============  ==========  ============  ==============================

Escalation needs ``escalate_after`` *consecutive* overloaded intervals
(``passthrough_after`` for the final rung — parking the monitor is a
last resort); de-escalation needs ``recover_after`` consecutive calm
intervals.  Intervals that are neither overloaded nor calm reset both
streaks: the gap between the overload and recovery thresholds is the
hysteresis band that keeps the ladder from flapping.

The overload signal is *normalized* record flow: records offered by
the PMU, rescaled by the current SAV and poll-interval stretch back to
base-knob units.  Without the normalization, raising SAV would halve
the observed record count and the controller would declare victory
over a storm that is still raging; normalized flow only drops when the
*source* calms down.

Everything here is pure, deterministic arithmetic on integers and
floats derived from the run config — no RNG, no wall clock — so
controller-on runs are byte-deterministic per seed, and the whole
object round-trips through ``state_dict`` for crash checkpoints.
"""

from typing import Dict, Optional, Tuple

__all__ = ["ControlMode", "ControlSignals", "KnobSettings",
           "OverloadController"]


class ControlMode:
    """The overload ladder, least to most degraded."""

    NOMINAL = "nominal"
    THROTTLED = "throttled"
    SHEDDING = "shedding"
    PASSTHROUGH = "passthrough"

    LADDER: Tuple[str, ...] = (NOMINAL, THROTTLED, SHEDDING, PASSTHROUGH)

    @classmethod
    def rung(cls, mode: str) -> int:
        return cls.LADDER.index(mode)


class ControlSignals:
    """One interval's controller inputs, straight from a WindowStats."""

    __slots__ = ("records_offered", "sample_after_value", "duration_cycles",
                 "records_dropped", "outbox_pending", "detect_latency")

    def __init__(self, records_offered: int, sample_after_value: int,
                 duration_cycles: int, records_dropped: int = 0,
                 outbox_pending: int = 0, detect_latency: int = 0):
        self.records_offered = records_offered
        self.sample_after_value = sample_after_value
        self.duration_cycles = duration_cycles
        self.records_dropped = records_dropped
        self.outbox_pending = outbox_pending
        self.detect_latency = detect_latency

    def __repr__(self):
        return ("<ControlSignals offered=%d sav=%d dur=%d drop=%d "
                "pending=%d lat=%d>"
                % (self.records_offered, self.sample_after_value,
                   self.duration_cycles, self.records_dropped,
                   self.outbox_pending, self.detect_latency))


class KnobSettings:
    """The three actuated knobs for one mode."""

    __slots__ = ("sample_after_value", "sample_weight",
                 "poll_interval_cycles", "admission_budget")

    def __init__(self, sample_after_value: int, sample_weight: int,
                 poll_interval_cycles: int,
                 admission_budget: Optional[int]):
        self.sample_after_value = sample_after_value
        #: Records sampled at an elevated SAV each stand for this many
        #: base-SAV records; the detection pipeline weights them so
        #: reported HITM rates stay unbiased under throttling.
        self.sample_weight = sample_weight
        self.poll_interval_cycles = poll_interval_cycles
        #: Records the driver may admit per check interval; ``None``
        #: means unlimited, ``0`` parks the monitor entirely.
        self.admission_budget = admission_budget

    def as_dict(self) -> Dict:
        return {
            "sav": self.sample_after_value,
            "weight": self.sample_weight,
            "poll_interval": self.poll_interval_cycles,
            "budget": self.admission_budget,
        }

    def __repr__(self):
        return "<KnobSettings sav=%d poll=%d budget=%s>" % (
            self.sample_after_value, self.poll_interval_cycles,
            self.admission_budget,
        )


#: SHEDDING admits this fraction of the THROTTLED budget rate.
_SHEDDING_BUDGET_DIVISOR = 4


class OverloadController:
    """Hysteresis ladder mapping load signals to knob settings."""

    def __init__(self, base_sav: int, base_interval_cycles: int,
                 budget_records: int, overload_ratio: float,
                 recover_ratio: float, escalate_after: int,
                 recover_after: int, passthrough_after: int,
                 sav_step: int, poll_step: int, max_sav: int):
        if base_sav < 1 or base_interval_cycles < 1:
            raise ValueError("base knobs must be >= 1")
        self.base_sav = base_sav
        self.base_interval_cycles = base_interval_cycles
        self.budget_records = budget_records
        self.overload_ratio = overload_ratio
        self.recover_ratio = recover_ratio
        self.escalate_after = escalate_after
        self.recover_after = recover_after
        self.passthrough_after = passthrough_after
        self.sav_step = sav_step
        self.poll_step = poll_step
        self.max_sav = max_sav
        self.reset()

    def reset(self) -> None:
        """Cold-start state (also the checkpoint-less restore path)."""
        self.mode = ControlMode.NOMINAL
        self.overload_streak = 0
        self.calm_streak = 0
        self.mode_changes = 0
        self.stuck_intervals = 0
        #: Intervals spent in each mode (counted at evaluation time).
        self.residency: Dict[str, int] = {
            mode: 0 for mode in ControlMode.LADDER
        }
        #: Worst knob excursions over the run, in absolute units above
        #: base (0 = the knob never left its base value).
        self.sav_max_excess = 0
        self.poll_max_excess = 0

    # ------------------------------------------------------------------
    # The knob table
    # ------------------------------------------------------------------

    def knobs_for(self, mode: str) -> KnobSettings:
        """The knob settings the given mode prescribes."""
        rung = ControlMode.rung(mode)
        sav = min(self.base_sav * self.sav_step ** rung, self.max_sav)
        weight = max(1, sav // self.base_sav)
        poll_factor = self.poll_step ** rung
        poll = self.base_interval_cycles * poll_factor
        if mode == ControlMode.NOMINAL:
            budget: Optional[int] = None
        elif mode == ControlMode.PASSTHROUGH:
            budget = 0
        elif mode == ControlMode.SHEDDING:
            budget = max(1, self.budget_records
                         // _SHEDDING_BUDGET_DIVISOR) * poll_factor
        else:  # THROTTLED
            budget = self.budget_records * poll_factor
        return KnobSettings(sav, weight, poll, budget)

    def knobs(self) -> KnobSettings:
        """The knob settings for the current mode."""
        return self.knobs_for(self.mode)

    # ------------------------------------------------------------------
    # The control law
    # ------------------------------------------------------------------

    def normalized_flow(self, signals: ControlSignals) -> float:
        """Record flow rescaled to base-knob units.

        ``offered x (sav / base_sav)`` undoes the sampling throttle
        (each elevated-SAV record stands for ``sav/base_sav`` base
        records); ``x (base_interval / duration)`` undoes the poll
        stretch.  The result is what the PMU *would* have offered per
        base interval at base SAV — a signal the controller's own
        actuation cannot fake.
        """
        if signals.duration_cycles <= 0:
            return 0.0
        sav = signals.sample_after_value or self.base_sav
        return (signals.records_offered
                * (sav / self.base_sav)
                * (self.base_interval_cycles / signals.duration_cycles))

    def evaluate(self, signals: ControlSignals) -> bool:
        """Fold one interval's signals in; True if the mode changed."""
        flow = self.normalized_flow(signals)
        overloaded = (
            flow > self.overload_ratio * self.budget_records
            or signals.records_dropped > 0
        )
        # Calm demands more than "not overloaded": flow well inside the
        # budget, nothing dropped, no backlog in the outbox and no
        # record older than the current poll interval — the hysteresis
        # band between the two thresholds is what stops flapping.
        poll_now = self.knobs().poll_interval_cycles
        calm = (
            flow < self.recover_ratio * self.budget_records
            and signals.records_dropped == 0
            and signals.outbox_pending == 0
            and signals.detect_latency <= poll_now
        )
        changed = False
        if overloaded:
            self.overload_streak += 1
            self.calm_streak = 0
            changed = self._maybe_escalate()
        elif calm:
            self.calm_streak += 1
            self.overload_streak = 0
            changed = self._maybe_recover()
        else:
            self.overload_streak = 0
            self.calm_streak = 0
        self.residency[self.mode] += 1
        return changed

    def _maybe_escalate(self) -> bool:
        rung = ControlMode.rung(self.mode)
        if rung >= len(ControlMode.LADDER) - 1:
            return False
        # Parking the monitor (PASSTHROUGH) is a last resort: it takes
        # a longer sustained overload than an ordinary escalation.
        needed = (self.passthrough_after
                  if ControlMode.LADDER[rung + 1] == ControlMode.PASSTHROUGH
                  else self.escalate_after)
        if self.overload_streak < needed:
            return False
        self._transition(ControlMode.LADDER[rung + 1])
        return True

    def _maybe_recover(self) -> bool:
        rung = ControlMode.rung(self.mode)
        if rung == 0 or self.calm_streak < self.recover_after:
            return False
        self._transition(ControlMode.LADDER[rung - 1])
        return True

    def _transition(self, mode: str) -> None:
        self.mode = mode
        self.mode_changes += 1
        self.overload_streak = 0
        self.calm_streak = 0
        knobs = self.knobs()
        self.sav_max_excess = max(
            self.sav_max_excess, knobs.sample_after_value - self.base_sav)
        self.poll_max_excess = max(
            self.poll_max_excess,
            knobs.poll_interval_cycles - self.base_interval_cycles)

    # ------------------------------------------------------------------
    # Checkpointing (the crash ladder composes with this one)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot for the crash checkpoint."""
        return {
            "mode": self.mode,
            "overload_streak": self.overload_streak,
            "calm_streak": self.calm_streak,
            "mode_changes": self.mode_changes,
            "stuck_intervals": self.stuck_intervals,
            "residency": [
                [mode, self.residency[mode]] for mode in ControlMode.LADDER
            ],
            "sav_max_excess": self.sav_max_excess,
            "poll_max_excess": self.poll_max_excess,
        }

    def load_state_dict(self, state: dict) -> None:
        self.mode = state["mode"]
        self.overload_streak = state["overload_streak"]
        self.calm_streak = state["calm_streak"]
        self.mode_changes = state["mode_changes"]
        self.stuck_intervals = state["stuck_intervals"]
        self.residency = {mode: count for mode, count in state["residency"]}
        self.sav_max_excess = state["sav_max_excess"]
        self.poll_max_excess = state["poll_max_excess"]

    def __repr__(self):
        return "<OverloadController %s changes=%d streaks=o%d/c%d>" % (
            self.mode, self.mode_changes, self.overload_streak,
            self.calm_streak,
        )
