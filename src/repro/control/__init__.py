"""Closed-loop overload control for the LASER monitor.

LASER's 2% overhead promise (Section 7) rests on a fixed SAV of 19 and
record flow shaped like the paper's 35 workloads.  This package is the
deployability answer for everything else: a seed-deterministic
controller that watches the windowed telemetry each check interval and
actuates the monitor's three load knobs — the PEBS Sample-After Value,
the detector poll cadence, and a per-interval record admission budget
enforced at the kernel-driver boundary — through a hysteresis ladder,
so a record-rate burst costs time-to-detect instead of correctness or
unbounded memory.

The controller itself (:class:`OverloadController`) is a pure policy
object: signals in, knob settings out, no clock of its own.  Mounting
it in a run is the job of
:class:`repro.core.services.control.ControlService`.
"""

from repro.control.controller import (
    ControlMode,
    ControlSignals,
    KnobSettings,
    OverloadController,
)

__all__ = [
    "ControlMode",
    "ControlSignals",
    "KnobSettings",
    "OverloadController",
]
