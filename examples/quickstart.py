#!/usr/bin/env python
"""Quickstart: detect and repair false sharing with LASER.

Runs the linear_regression benchmark analog three ways:

1. natively (the false sharing costs most of the runtime),
2. under LASER with tracing on (detection + online repair, plus the
   per-window HITM-rate timeline and repair-lifecycle events that
   show *when* the repair attached and what it did to the rate),
3. with the manual fix LASERDETECT's report suggests (cache-line
   alignment of the `lreg_args` array).

Usage: python examples/quickstart.py

Exits 0 on a clean run; any unexpected exception is reported and the
process exits 1 (so the example doubles as a smoke test in CI).
"""

import sys
import traceback

from repro.core import Laser, LaserConfig
from repro.experiments.runner import run_built_native, run_native
from repro.workloads import get_workload


def main():
    workload = get_workload("linear_regression")

    native = run_native(workload)
    print("native run:        %8d cycles, %5d HITM events (%d/sec)" % (
        native.cycles, native.hitm_count, native.hitm_rate_per_second))

    laser = Laser(LaserConfig(trace_enabled=True))
    result = laser.run_workload(workload)
    print("under LASER:       %8d cycles  (%.2fx native, repaired=%s)" % (
        result.cycles, result.cycles / native.cycles, result.repaired))
    print("run health:        %s" % result.health.summary())
    # Crash-recovery accounting (repro.resilience): on a healthy run
    # the checkpoints are pure insurance — everything else stays zero.
    print("%s" % result.health.recovery_summary().replace(
        "recovery:", "recovery:         ", 1))

    # The telemetry time series shows the repair working: the HITM
    # rate is high until the detector crosses its threshold, repair
    # attaches (R), and the rate collapses for the rest of the run.
    print("\nper-window HITM-rate timeline:")
    print(result.telemetry.render_timeline())

    print("\nrepair lifecycle (from the event trace):")
    for event in result.telemetry.tracer.events_named("repair."):
        args = " ".join("%s=%s" % (k, v)
                        for k, v in sorted((event.args or {}).items()))
        print("  %8d  %-22s %s" % (event.cycle, event.name, args))

    # Every rewrite LASERREPAIR attaches is first proved safe by the
    # static TSO/SSB verifier; a rejection here would mean the rewriter
    # produced code the checker could not verify (counted as degraded).
    plan = result.repair_plan
    if plan is not None and plan.verifier_results:
        verdicts = ", ".join(
            "thread %d: %s" % (tid, verdict.summary())
            for tid, verdict in sorted(plan.verifier_results.items()))
        print("rewrite verifier:  %s (%d plan(s) rejected)" % (
            verdicts, laser.repairer.plans_verifier_rejected))

    print("\nLASERDETECT report:")
    print(result.report.render())

    from repro.static.predict import predict_program
    built = workload.build(heap_offset=laser.config.heap_shift,
                           seed=laser.config.seed)
    static_report = predict_program(built.program)
    print("\nstatic prediction (no execution):")
    print(static_report.render())

    fixed = workload.build_fixed()
    fixed_run = run_built_native(fixed)
    print("\nmanually fixed:    %8d cycles  (%.1fx speedup: align the "
          "lreg_args array)" % (fixed_run.cycles,
                                native.cycles / fixed_run.cycles))


if __name__ == "__main__":
    try:
        main()
    except Exception:
        traceback.print_exc()
        print("quickstart failed — see traceback above", file=sys.stderr)
        sys.exit(1)
