#!/usr/bin/env python
"""Compare LASER against the Sheriff execution model (Figure 14 slice).

Three representative benchmarks:

* linear_regression — Sheriff-Protect *fixes* the false sharing as a
  side effect of private address spaces (even though Sheriff-Detect
  cannot detect it), at the cost of TSO compliance;
* water_nsquared — synchronization-heavy: Sheriff's per-sync
  diff-and-merge collapses while LASER stays free;
* kmeans — crashes under Sheriff, runs fine under LASER.

Usage: python examples/compare_with_sheriff.py
"""

from repro.baselines.sheriff import SheriffMode, run_sheriff
from repro.core import Laser, LaserConfig
from repro.errors import SheriffCrash, SheriffIncompatible
from repro.experiments.runner import run_native
from repro.workloads import get_workload


def main():
    print("%-20s %10s %10s %16s" % ("benchmark", "LASER", "SheriffP",
                                    "(normalized)"))
    for name in ("linear_regression", "water_nsquared", "kmeans"):
        workload = get_workload(name)
        native = run_native(workload)
        laser = Laser(LaserConfig()).run_workload(workload)
        laser_norm = "%.3f" % (laser.cycles / native.cycles)
        try:
            sheriff = run_sheriff(workload, SheriffMode.PROTECT)
            sheriff_norm = "%.3f" % (sheriff.cycles / native.cycles)
        except (SheriffCrash, SheriffIncompatible) as exc:
            sheriff_norm = "x (%s)" % type(exc).__name__
        print("%-20s %10s %10s" % (name, laser_norm, sheriff_norm))


if __name__ == "__main__":
    main()
