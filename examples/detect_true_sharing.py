#!/usr/bin/env python
"""True-sharing detection: the contention padding cannot fix.

Runs the kmeans and dedup analogs under LASERDETECT.  Both contend
through *true* sharing — kmeans on its redundantly-updated `modified`
flag and its migratory sum objects, dedup on its single queue lock —
which false-sharing-only tools (Sheriff, Plastic) cannot see, and which
LASERREPAIR correctly declines to "repair".

Usage: python examples/detect_true_sharing.py
"""

from repro.core import Laser, LaserConfig
from repro.experiments.runner import run_built_native, run_native
from repro.workloads import get_workload


def main():
    for name, fix_note in (
        ("kmeans", "stack-allocate the sum objects (Section 7.4.2)"),
        ("dedup", "replace the locked queue with a lock-free one"),
    ):
        workload = get_workload(name)
        native = run_native(workload)
        result = Laser(LaserConfig()).run_workload(workload)
        print("=" * 64)
        print("%s: %d HITM events/sec native" % (
            name, native.hitm_rate_per_second))
        print(result.report.render())
        print("repaired automatically: %s (true sharing is not repairable "
              "by a store buffer)" % result.repaired)

        fixed = workload.build_fixed()
        fixed_run = run_built_native(fixed)
        print("manual fix [%s]: %.2fx" % (
            fix_note, native.cycles / fixed_run.cycles))


if __name__ == "__main__":
    main()
