#!/usr/bin/env python
"""Reproduce a slice of the Figure 3 PEBS characterization.

Builds two-thread sharing test cases (true/false sharing x read-write/
write-write) and measures how often the simulated Haswell HITM records
carry the correct data address and PC — the Section 3.1 experiment that
motivates LASERDETECT's filtering pipeline.

Usage: python examples/characterize_pebs.py
"""

from repro.experiments.characterize import run_characterization
from repro.workloads.characterization import generate_cases


def main():
    cases = generate_cases()[::8]  # a 20-case sample of the 160
    result = run_characterization(cases)
    print(result.render())
    print()
    print("Load-triggered (RW) records are usable; store-triggered (WW)")
    print("records are mostly garbage - exactly why the detector needs")
    print("its memory-map filters and byte-level cache-line model.")


if __name__ == "__main__":
    main()
