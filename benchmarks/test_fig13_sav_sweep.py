"""Figure 13: dedup runtime vs. the sample-after value."""

from repro.experiments.sav import run_sav_sweep


def test_fig13_sav_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_sav_sweep(runs=3, sav_values=[1, 3, 7, 13, 19, 31]),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    at_1 = result.normalized_at(1)
    at_19 = result.normalized_at(19)
    at_31 = result.normalized_at(31)
    # Paper: ~1.5x at SAV=1, ~1.06 at the SAV=19 default, flat beyond.
    assert at_1 > at_19 + 0.08
    assert at_19 < 1.15
    assert abs(at_31 - at_19) < 0.08
