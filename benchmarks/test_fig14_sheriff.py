"""Figure 14: LASER vs. manual fixes vs. the Sheriff schemes."""

from repro.experiments.sheriff_cmp import run_sheriff_comparison


def test_fig14_sheriff(benchmark):
    result = benchmark.pedantic(
        run_sheriff_comparison, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Sheriff fixes linear_regression's false sharing even though
    # Sheriff-Detect reports nothing there.
    lreg = result.row_for("linear_regression")
    assert lreg.sheriff_protect is not None and lreg.sheriff_protect < 1.0
    # The threads-as-processes model collapses on sync-heavy code.
    water = result.row_for("water_nsquared")
    assert water.sheriff_protect > 2.0
    # LASER stays uniformly low overhead.
    for row in result.rows:
        assert row.laser < 1.25
    # kmeans crashes under both Sheriff schemes (Table 1's "x").
    kmeans = result.row_for("kmeans")
    assert kmeans.sheriff_detect is None and kmeans.sheriff_protect is None
