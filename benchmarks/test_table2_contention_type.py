"""Table 2: true- vs false-sharing classification per bug."""

from repro.experiments.accuracy import run_contention_type


def test_table2_contention_type(benchmark):
    result = benchmark.pedantic(run_contention_type, rounds=1, iterations=1)
    print()
    print(result.render())
    # Paper: LASER correct for most bugs; linear_regression stays
    # unknown due to low write-record address accuracy.
    assert result.correct_count >= 6
    lreg = result.row_for("linear_regression")
    assert lreg.laser == "unknown"
    assert result.row_for("dedup").laser == "TS"
    assert result.row_for("reverse_index").sheriff == "FS"
