"""Figure 9: detection accuracy vs. the rate threshold."""

from repro.experiments.thresholds import run_threshold_sweep


def test_fig9_threshold_sweep(benchmark):
    result = benchmark.pedantic(run_threshold_sweep, rounds=1, iterations=1)
    print()
    print(result.render())
    fp_low, fn_low = result.at(32.0)
    fp_default, fn_default = result.at(1024.0)
    fp_high, fn_high = result.at(65536.0)
    # Low thresholds flood with FPs; high thresholds introduce FNs; the
    # default (1K) balances: no FNs, modest FPs.
    assert fp_low > 2 * fp_default
    assert fn_default == 0
    assert fn_high > 0
    assert fp_high <= fp_default
