"""Figure 10: runtime overhead of LASER and VTune, whole suite."""

from repro.experiments.overhead import run_overhead


def test_fig10_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_overhead(runs=3), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Paper: LASER geomean 1.02 (kmeans worst, 1.22); VTune geomean 1.84.
    assert result.laser_geomean < 1.06
    assert result.vtune_geomean > 1.4
    assert result.vtune_geomean > result.laser_geomean
    # Repair makes the false-sharing victims *faster* than native.
    assert result.row_for("histogram'").laser_norm < 1.0
    assert result.row_for("lu_ncb").laser_norm < 0.95  # layout coincidence
    # No benchmark suffers badly under LASER.
    assert result.worst_laser().laser_norm < 1.25
