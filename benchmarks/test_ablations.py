"""Ablations of LASER's design choices (beyond the paper's figures).

Each ablation switches off one mechanism DESIGN.md calls out and shows
the consequence the paper argues for:

* **record filtering** (Section 4.1): without the memory-map/stack
  filters, spurious records reach the aggregator;
* **SSB preflush at L1 associativity** (Section 5.5): the HTM capacity
  fallback fires when the preflush bound is lifted;
* **speculative alias analysis** (Section 5.3): repaired code pays for
  every load when independent loads are not exempted;
* **flush placement** (Section 5.3): flushing inside the loop instead
  of at its post-dominator multiplies flush count.
"""

from repro.core.detect.pipeline import DetectionPipeline
from repro.core.laser import Laser
from repro.core.config import LaserConfig
from repro.core.repair.analysis import analyze_thread
from repro.core.repair.manager import LaserRepair
from repro.core.repair.rewrite import rewrite_thread
from repro.isa.instructions import Opcode
from repro.sim.machine import Machine
from repro.workloads.registry import get_workload


def test_ablation_record_filters(benchmark):
    """Without Section 4.1's filters the detector ingests garbage."""
    def run():
        return Laser(LaserConfig(repair_enabled=False)).run_workload(
            get_workload("linear_regression")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.pipeline.filter
    dropped = stats.dropped_bad_pc + stats.dropped_stack_addr
    print("\nfiltered records: %d of %d (%.0f%%)" % (
        dropped, stats.total_seen, 100.0 * dropped / stats.total_seen))
    # Write-heavy workloads produce plenty of spurious records; the
    # filters must be doing real work.
    assert dropped > 0
    assert stats.passed > 0


def test_ablation_alias_analysis(benchmark):
    """Exempting independent loads is worth real cycles (Section 5.3)."""
    workload = get_workload("linear_regression")

    def run_with(exempt: bool):
        built = workload.build(heap_offset=64, seed=0)
        program = built.program
        pcs = {inst.pc for inst in program.all_instructions()
               if inst.op is Opcode.STORE}
        machine = Machine(program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        for tid, code in enumerate(program.threads):
            analysis = analyze_thread(code, pcs)
            if not exempt:
                # Conservative mode: every load uses the SSB.
                analysis.exempt_loads.clear()
                analysis.alias_checks.clear()
            new_code, index_map = rewrite_thread(code, analysis)
            machine.cores[tid].replace_code(new_code.instructions, index_map)
            from repro.core.repair.ssb import SoftwareStoreBuffer

            machine.cores[tid].ssb = SoftwareStoreBuffer(machine, tid)
        return machine.run().cycles

    speculative = benchmark.pedantic(
        lambda: run_with(True), rounds=1, iterations=1
    )
    conservative = run_with(False)
    print("\nspeculative alias analysis: %d cycles; conservative: %d "
          "(+%.0f%%)" % (speculative, conservative,
                         100.0 * (conservative - speculative) / speculative))
    assert conservative > speculative


def test_ablation_flush_placement(benchmark):
    """Flushing inside the loop (not at its post-dominator) is ruinous."""
    workload = get_workload("linear_regression")

    def run_with_flush_in_loop(in_loop: bool):
        built = workload.build(heap_offset=64, seed=0)
        program = built.program
        pcs = {inst.pc for inst in program.all_instructions()
               if inst.op is Opcode.STORE}
        machine = Machine(program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        from repro.core.repair.ssb import SoftwareStoreBuffer

        for tid, code in enumerate(program.threads):
            analysis = analyze_thread(code, pcs)
            if in_loop:
                # Pathological placement: flush right after the last
                # contending store, every iteration.
                store_indices = [
                    i for i in analysis.instrumented_instruction_indices()
                    if code.instructions[i].op is Opcode.STORE
                ]
                analysis.flush_before_instructions = {max(store_indices) + 1}
            new_code, index_map = rewrite_thread(code, analysis)
            machine.cores[tid].replace_code(new_code.instructions, index_map)
            machine.cores[tid].ssb = SoftwareStoreBuffer(machine, tid)
        result = machine.run()
        flushes = sum(c.stats.ssb_flushes for c in machine.cores)
        return result.cycles, flushes

    good_cycles, good_flushes = benchmark.pedantic(
        lambda: run_with_flush_in_loop(False), rounds=1, iterations=1
    )
    bad_cycles, bad_flushes = run_with_flush_in_loop(True)
    print("\npost-dominator flush: %d cycles / %d flushes; "
          "per-iteration flush: %d cycles / %d flushes" % (
              good_cycles, good_flushes, bad_cycles, bad_flushes))
    assert bad_flushes > 10 * max(1, good_flushes)
    assert bad_cycles > good_cycles


def test_ablation_preflush_capacity(benchmark):
    """Without the 8-line preflush, flushes overflow the HTM."""
    from repro.core.repair.ssb import SoftwareStoreBuffer
    from repro.isa.assembler import Assembler
    from repro.isa.program import Program

    def run_with(preflush_lines: int):
        asm = Assembler("w")
        asm.halt()
        machine = Machine(Program("host", [asm.build()]), jitter=False)
        ssb = SoftwareStoreBuffer(machine, 0, preflush_lines=preflush_lines)
        flush_cycles = 0
        for i in range(64):
            ssb.put(0x10000000 + 64 * i, i, 8)
            if ssb.should_preflush():
                flush_cycles += ssb.flush(0)
        flush_cycles += ssb.flush(0)
        return ssb.stats.htm_aborts, flush_cycles

    aborts_with, _ = benchmark.pedantic(
        lambda: run_with(8), rounds=1, iterations=1
    )
    aborts_without, _ = run_with(10 ** 9)
    print("\nHTM aborts with preflush: %d; without: %d" % (
        aborts_with, aborts_without))
    assert aborts_with == 0
    assert aborts_without >= 1
