"""Figure 3: HITM record accuracy characterization (160 test cases)."""

from repro.experiments.characterize import run_characterization
from repro.workloads.characterization import generate_cases


def test_fig3_characterization(benchmark):
    # A representative quarter of the grid keeps the benchmark quick;
    # run `python -m repro.experiments.characterize` for all 160 cases.
    cases = generate_cases()[::4]
    result = benchmark.pedantic(
        lambda: run_characterization(cases), rounds=1, iterations=1
    )
    print()
    print(result.render())
    means = result.group_means()
    # The paper's headline bands.
    assert 0.6 < means["TSRW"]["addr_correct"] < 0.9
    assert means["TSWW"]["addr_correct"] < 0.3
    assert means["TSRW"]["pc_adjacent"] > means["TSWW"]["pc_adjacent"]
