"""Table 1: detection accuracy of LASER, VTune and Sheriff-Detect."""

from repro.experiments.accuracy import run_accuracy


def test_table1_accuracy(benchmark):
    result = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    print()
    print(result.render())
    totals = result.totals
    # Paper: LASER 0 FN / 24 FP; VTune 1 FN / 64 FP; Sheriff 3 FN / 4 FP.
    assert totals["laser_fn"] == 0
    assert 10 <= totals["laser_fp"] <= 45
    assert totals["vtune_fn"] <= 2
    assert totals["vtune_fp"] > totals["laser_fp"]
    assert totals["sheriff_fn"] == 3
    assert totals["sheriff_fp"] == 4
