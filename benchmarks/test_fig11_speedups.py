"""Figure 11: automatic (LASERREPAIR) and manual-fix speedups."""

from repro.experiments.speedup import run_speedups


def test_fig11_speedups(benchmark):
    result = benchmark.pedantic(
        lambda: run_speedups(runs=3), rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Automatic repair wins modestly (paper: 1.16x / 1.19x).
    auto_hist = result.entry_for("histogram'", "automatic")
    auto_lreg = result.entry_for("linear_regression", "automatic")
    assert auto_hist.repaired and auto_lreg.repaired
    assert 1.0 < auto_hist.speedup < 2.0
    assert 1.0 < auto_lreg.speedup < 2.0
    # Manual fixes win hugely on the alignment bugs (paper: 5.8x/16.9x)
    # and modestly elsewhere (dedup 1.16x, kmeans 1.05x, lu_ncb 1.36x).
    assert result.entry_for("histogram'", "manual").speedup > 4.0
    assert result.entry_for("linear_regression", "manual").speedup > 4.0
    assert 1.0 < result.entry_for("dedup", "manual").speedup < 1.6
    assert 1.0 < result.entry_for("kmeans", "manual").speedup < 1.6
    assert 1.1 < result.entry_for("lu_ncb", "manual").speedup < 1.9
