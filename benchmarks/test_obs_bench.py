"""BENCH_obs.json: the perf snapshot behind the observability layer."""

from repro.obs.bench import DEFAULT_BENCH_WORKLOADS, collect_bench, render_bench


def test_obs_bench_snapshot(benchmark):
    bench = benchmark.pedantic(collect_bench, rounds=1, iterations=1)
    print()
    print(render_bench(bench))
    assert len(bench["workloads"]) == len(DEFAULT_BENCH_WORKLOADS) >= 5
    # Figure 10's claim: LASER monitoring is near-free on average
    # (repair speedups can push the geomean below 1.0).
    assert bench["geomean_overhead"] < 1.10
    for name, entry in bench["workloads"].items():
        assert entry["native_cycles"] > 0, name
        assert entry["laser_cycles"] > 0, name
    # the two known-repairable workloads actually engage repair
    assert bench["workloads"]["histogram'"]["repaired"]
    assert bench["workloads"]["linear_regression"]["repaired"]
