"""Figure 12: driver/detector CPU time for high-overhead benchmarks."""

from repro.experiments.overhead import run_time_breakdown


def test_fig12_time_breakdown(benchmark):
    result = benchmark.pedantic(run_time_breakdown, rounds=1, iterations=1)
    print()
    print(result.render())
    for row in result.rows:
        # "Generally, very little time is spent inside the LASER system."
        assert row.driver_pct + row.detector_pct < 5.0
