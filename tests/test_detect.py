"""Tests for the LASERDETECT pipeline stages."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detect.filters import RecordFilter
from repro.core.detect.linemap import LineAggregator, LineStats
from repro.core.detect.linemodel import CacheLineModel, SharingType
from repro.core.detect.loadstore import LoadStoreSets
from repro.core.detect.pipeline import DetectionPipeline
from repro.core.detect.report import (
    ContentionClass,
    ContentionReport,
    LineReport,
    classify_counts,
)
from repro.isa.program import SourceLocation
from repro.pebs.events import StrippedRecord
from repro.sim.vmmap import APP_CODE_BASE, KERNEL_BASE, STACK_TOP, default_memory_map

from helpers import make_counter_program


def make_pipeline(program=None, sav=19):
    program = program or make_counter_program(use_addm=True)
    vmmap = default_memory_map(program.num_threads, program.code_end)
    return DetectionPipeline(program, vmmap, sample_after_value=sav)


class TestRecordFilter:
    def _filter(self):
        vmmap = default_memory_map(2, APP_CODE_BASE + 0x1000)
        return RecordFilter(vmmap)

    def test_app_pc_with_heap_address_passes(self):
        f = self._filter()
        assert f.admit(StrippedRecord(APP_CODE_BASE + 8, 0x10000000, 0, 5))
        assert f.passed == 1

    def test_spurious_kernel_pc_dropped(self):
        f = self._filter()
        assert not f.admit(StrippedRecord(KERNEL_BASE + 8, 0x10000000, 0, 5))
        assert f.dropped_bad_pc == 1

    def test_unmapped_pc_dropped(self):
        f = self._filter()
        assert not f.admit(StrippedRecord(0x123, 0x10000000, 0, 5))

    def test_stack_data_address_dropped(self):
        f = self._filter()
        record = StrippedRecord(APP_CODE_BASE + 8, STACK_TOP - 128, 0, 5)
        assert not f.admit(record)
        assert f.dropped_stack_addr == 1

    def test_unmapped_data_address_passes(self):
        """Figure 4 drops only stack data addresses, nothing else."""
        f = self._filter()
        assert f.admit(StrippedRecord(APP_CODE_BASE + 8, 0x5000_00000000, 0, 5))


class TestLoadStoreSets:
    def test_memory_op_pcs_decoded(self):
        program = make_counter_program(use_addm=True)
        sets = LoadStoreSets.from_program(program)
        addm_pcs = [
            inst.pc for inst in program.all_instructions()
            if inst.op.value == "addm"
        ]
        info = sets.lookup(addm_pcs[0])
        assert info.is_load and info.is_store and info.size == 8

    def test_non_memory_pcs_not_decodable(self):
        program = make_counter_program()
        sets = LoadStoreSets.from_program(program)
        alu_pcs = [
            inst.pc for inst in program.all_instructions()
            if not inst.is_memory_op
        ]
        assert sets.lookup(alu_pcs[0]) is None
        assert alu_pcs[0] not in sets


class TestLineAggregator:
    def test_records_aggregate_by_source_line(self):
        program = make_counter_program()
        agg = LineAggregator(program, sample_after_value=19)
        loc = SourceLocation("counter.c", 14)
        for pc in program.pcs_for_location(loc)[:1] * 5:
            agg.add_record_pc(pc)
        stats = agg.stats_for(loc)
        assert stats.record_count == 5

    def test_unresolved_pcs_counted(self):
        program = make_counter_program()
        agg = LineAggregator(program, sample_after_value=19)
        agg.add_record_pc(0xDEADBEEF)
        assert agg.unresolved_pcs == 1

    def test_rate_scales_with_sav_and_duration(self):
        stats = LineStats(SourceLocation("f.c", 1))
        for _ in range(10):
            stats.add(0x400000)
        # 10 records * SAV 19 over one simulated second.
        assert stats.hitm_rate(1_000_000, 19) == 190.0
        assert stats.hitm_rate(500_000, 19) == 380.0

    def test_threshold_is_monotone(self):
        program = make_counter_program()
        agg = LineAggregator(program, sample_after_value=19)
        locs = program.locations()
        for i, loc in enumerate(locs):
            for pc in program.pcs_for_location(loc)[:1] * (i + 1) * 3:
                agg.add_record_pc(pc)
        last = None
        for threshold in (0, 10, 100, 1000, 10000):
            count = len(agg.lines_above_threshold(1_000_000, threshold))
            if last is not None:
                assert count <= last
            last = count

    def test_peak_window_rate_survives_quiet_phases(self):
        stats = LineStats(SourceLocation("f.c", 1))
        for _ in range(30):
            stats.add(0x400000)
        stats.roll_window(150_000, 19)
        peak = stats.peak_window_rate
        assert peak > 0
        # A long quiet tail dilutes the cumulative rate but not the peak.
        assert stats.hitm_rate(100_000_000, 19) == peak

    def test_small_bursts_do_not_set_peak(self):
        stats = LineStats(SourceLocation("f.c", 1))
        for _ in range(3):  # below MIN_WINDOW_RECORDS
            stats.add(0x400000)
        stats.roll_window(150_000, 19)
        assert stats.peak_window_rate == 0.0


class TestCacheLineModel:
    def test_first_access_is_not_contention(self):
        model = CacheLineModel()
        assert model.observe(0x100, 8, True) is SharingType.NONE

    def test_overlapping_write_pair_is_true_sharing(self):
        model = CacheLineModel()
        model.observe(0x100, 8, True)
        assert model.observe(0x100, 8, False) is SharingType.TRUE_SHARING
        assert model.ts_events == 1

    def test_disjoint_write_pair_is_false_sharing(self):
        model = CacheLineModel()
        model.observe(0x100, 8, True)
        assert model.observe(0x108, 8, True) is SharingType.FALSE_SHARING
        assert model.fs_events == 1

    def test_read_read_is_not_contention(self):
        model = CacheLineModel()
        model.observe(0x100, 8, False)
        assert model.observe(0x100, 8, False) is SharingType.NONE

    def test_partial_byte_overlap_is_true_sharing(self):
        model = CacheLineModel()
        model.observe(0x100, 4, True)
        assert model.observe(0x102, 4, True) is SharingType.TRUE_SHARING

    def test_different_lines_do_not_interact(self):
        model = CacheLineModel()
        model.observe(0x100, 8, True)
        assert model.observe(0x140, 8, True) is SharingType.NONE
        assert model.tracked_lines == 2

    def test_straddling_access_clipped_to_first_line(self):
        model = CacheLineModel()
        model.observe(0x13C, 8, True)
        bitmap, was_write = model.previous_access(0x13C)
        assert was_write
        assert bitmap >> 60 == 0xF  # bytes 60-63 only

    @given(st.integers(0, 56), st.integers(0, 56),
           st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_classification_matches_overlap_property(self, o1, o2, s1, s2):
        """write-write pairs: overlap <=> TS, disjoint <=> FS."""
        model = CacheLineModel()
        model.observe(0x100 + o1, s1, True)
        result = model.observe(0x100 + o2, s2, True)
        overlaps = not (o1 + s1 <= o2 or o2 + s2 <= o1)
        expected = (SharingType.TRUE_SHARING if overlaps
                    else SharingType.FALSE_SHARING)
        assert result is expected


class TestClassification:
    def test_insufficient_events_is_unknown(self):
        assert classify_counts(2, 1) is ContentionClass.UNKNOWN

    def test_dominant_ts(self):
        assert classify_counts(20, 2) is ContentionClass.TRUE_SHARING

    def test_dominant_fs(self):
        assert classify_counts(2, 20) is ContentionClass.FALSE_SHARING

    def test_mixed_is_unknown(self):
        assert classify_counts(10, 10) is ContentionClass.UNKNOWN

    def test_repair_candidates_exclude_true_sharing(self):
        ts_line = LineReport(SourceLocation("f.c", 1), 100, 9000.0, 30, 1)
        report = ContentionReport([ts_line], 1_000_000, 19, 1000.0)
        assert report.repair_candidates(4000.0) == []

    def test_repair_candidates_require_total_rate(self):
        fs_line = LineReport(SourceLocation("f.c", 1), 100, 2000.0, 1, 20)
        report = ContentionReport([fs_line], 1_000_000, 19, 1000.0)
        assert report.repair_candidates(4000.0) == []
        assert len(report.repair_candidates(1500.0)) == 1

    def test_repair_candidates_need_fs_evidence(self):
        noise = LineReport(SourceLocation("f.c", 1), 100, 9000.0, 0, 0)
        report = ContentionReport([noise], 1_000_000, 19, 1000.0)
        assert report.repair_candidates(4000.0) == []

    def test_unknown_verdict_does_not_block_repair(self):
        """The linear_regression situation."""
        line = LineReport(SourceLocation("f.c", 1), 100, 9000.0, 3, 4)
        assert line.contention_class is ContentionClass.UNKNOWN
        report = ContentionReport([line], 1_000_000, 19, 1000.0)
        assert report.repair_candidates(4000.0) == [line]


class TestPipeline:
    def test_records_flow_through_all_stages(self):
        program = make_counter_program(use_addm=True)
        pipeline = make_pipeline(program)
        loc = SourceLocation("counter.c", 14)
        pc = [p for p in program.pcs_for_location(loc)
              if pipeline.load_store_sets.lookup(p)][0]
        records = [
            StrippedRecord(pc, 0x10000040 + 8 * (i % 4), i % 4, i * 100)
            for i in range(10)
        ]
        pipeline.process(records)
        assert pipeline.stats.records_admitted == 10
        report = pipeline.report(1_000_000, 0.0)
        line = report.line_for(loc)
        assert line is not None
        assert line.fs_events > 0  # distinct words, one line

    def test_undecodable_pcs_skip_line_model(self):
        program = make_counter_program()
        pipeline = make_pipeline(program)
        alu_pc = [inst.pc for inst in program.all_instructions()
                  if not inst.is_memory_op][0]
        pipeline.process([StrippedRecord(alu_pc, 0x10000040, 0, 1)])
        assert pipeline.stats.undecodable_pcs == 1
        assert pipeline.line_model.tracked_lines == 0

    def test_contending_pcs_for_line_returns_memory_ops(self):
        program = make_counter_program(use_addm=True)
        pipeline = make_pipeline(program)
        loc = SourceLocation("counter.c", 14)
        pcs = pipeline.contending_pcs_for_line(loc)
        assert pcs
        assert all(pipeline.load_store_sets.lookup(pc) for pc in pcs)

    def test_report_threshold_applied_offline(self):
        program = make_counter_program(use_addm=True)
        pipeline = make_pipeline(program)
        loc = SourceLocation("counter.c", 14)
        pc = pipeline.contending_pcs_for_line(loc)[0]
        pipeline.process(
            [StrippedRecord(pc, 0x10000040, 0, i) for i in range(8)]
        )
        loose = pipeline.report(1_000_000, 1.0)
        strict = pipeline.report(1_000_000, 1e9)
        assert loose.lines and not strict.lines
