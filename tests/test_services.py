"""The service kernel: lifecycle contract, checkpoints, bit-identity.

Four layers of assurance for the ``repro.core.services`` decomposition:

* **Scheduler contract** — the hook ordering within each run slice is
  a bit-identity requirement (fault sites are consulted in slice
  order), so it is pinned with recording services on a fake machine.
* **Checkpoint round-trip** — each service's save/restore contribution
  composes into the same payload shape the monolith wrote, and
  restoring it (or a cold start) rebuilds the same state.
* **Fault-site routing** — detector stall/crash, driver crash and
  repair-error sites land in the service that owns them, visible
  through the RunHealth counters each service contributes.
* **Golden bit-identity** — ``run_built`` output (cycles, rendered
  report, trace JSONL bytes, windowed telemetry bytes, RunHealth dict)
  equals a recording taken at the pre-refactor monolith HEAD, across
  3 workloads x 3 seeds plus chaotic crash-schedule cells.

Plus the kernel's structural guard (``core/laser.py`` stays a slim
composition root) and the ``SweepRunner`` determinism checks (serial
and process-pool runs byte-agree, at any worker count).
"""

import ast
import os
from types import SimpleNamespace

import pytest

from golden_runbuilt import assert_cell_matches, collect_cell, load_golden
from repro.core import Laser, LaserConfig, RunHealth
from repro.core.health import HealthField
from repro.core.services import (
    DetectionService,
    DetectorState,
    DriverPollService,
    RepairService,
    ResilienceService,
    RunContext,
    Scheduler,
    Service,
    TelemetryService,
)
from repro.experiments.chaos import run_chaos_soak
from repro.experiments.runner import SweepRunner
from repro.experiments.thresholds import run_threshold_sweep
from repro.faults import FaultInjector, FaultPlan
from repro.obs.telemetry import RunTelemetry
from repro.obs.trace import NULL_TRACER
from repro.workloads import get_workload

pytestmark = pytest.mark.services

LASER_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "src", "repro", "core", "laser.py")


# ----------------------------------------------------------------------
# Harness: a recording service fleet on a fake machine
# ----------------------------------------------------------------------

class _Recorder(Service):
    """Logs every hook invocation as (service, hook)."""

    def __init__(self, name, log):
        self.name = name
        self._log = log

    def _note(self, hook):
        self._log.append((self.name, hook))

    def on_start(self, ctx):
        self._note("start")

    def on_poll(self, ctx):
        self._note("poll")

    def on_check_interval(self, ctx):
        self._note("check")

    def on_checkpoint_save(self, ctx, state):
        self._note("save")
        state[self.name] = {"from": self.name}

    def on_checkpoint_restore(self, ctx, state):
        self._note("restore")

    def on_exit(self, ctx):
        self._note("exit")

    def health(self, ctx):
        self._note("health")


class _PollingRecorder(_Recorder):
    """The detection stand-in: marks every poll slice successful."""

    def on_poll(self, ctx):
        super().on_poll(ctx)
        ctx.polled = True


class _FakeMachine:
    """Finishes after a fixed number of run slices."""

    def __init__(self, slices):
        self.cycle = 0
        self._remaining = slices

    def run(self, until_cycle, max_cycles):
        self.cycle = until_cycle
        self._remaining -= 1
        return SimpleNamespace(finished=self._remaining <= 0)


def _fake_context(config=None, slices=2):
    config = config or LaserConfig(resilience_enabled=False)
    ctx = RunContext(
        config=config,
        machine=_FakeMachine(slices),
        program=SimpleNamespace(name="fake"),
        injector=FaultInjector(FaultPlan()),
        tracer=NULL_TRACER,
        telemetry=RunTelemetry(),
        health=RunHealth(),
        driver=SimpleNamespace(),
        pmu=SimpleNamespace(total_hitm_count=0),
        pipeline=SimpleNamespace(report=lambda cycles, threshold: "report"),
        repairer=None,
        runtime=None,
        st=DetectorState(config),
    )
    return ctx


def _recording_scheduler(ctx):
    log = []
    scheduler = Scheduler(
        ctx,
        resilience=_Recorder("resilience", log),
        driver_poll=_Recorder("driver_poll", log),
        detection=_PollingRecorder("detection", log),
        repair=_Recorder("repair", log),
        telemetry=_Recorder("telemetry", log),
    )
    return scheduler, log


ALL = ("resilience", "driver_poll", "detection", "repair", "telemetry")


class TestSchedulerContract:
    """The kernel's slice ordering is explicit and pinned."""

    def test_lifecycle_hook_ordering(self):
        ctx = _fake_context(slices=2)
        scheduler, log = _recording_scheduler(ctx)
        report = scheduler.run(max_cycles=10**6)
        assert report == "report"
        expected = (
            [(s, "start") for s in ALL]
            # Interval 1: poll slice, then (non-final, polled) the
            # check-interval slice with repair BEFORE the resilience
            # checkpoint cadence.
            + [(s, "poll") for s in
               ("resilience", "driver_poll", "detection", "repair",
                "telemetry")]
            + [(s, "check") for s in
               ("driver_poll", "detection", "repair", "resilience",
                "telemetry")]
            # Interval 2 is final: poll slice only, then the exit slice
            # (resilience's was_down verdict before the driver's
            # backlog accounting before the detection drain), then the
            # health fan-out.
            + [(s, "poll") for s in
               ("resilience", "driver_poll", "detection", "repair",
                "telemetry")]
            + [(s, "exit") for s in
               ("resilience", "driver_poll", "detection", "repair",
                "telemetry")]
            + [(s, "health") for s in ALL]
        )
        assert log == expected

    def test_unpolled_interval_skips_check_slice(self):
        ctx = _fake_context(slices=2)
        log = []
        scheduler = Scheduler(
            ctx,
            resilience=_Recorder("resilience", log),
            driver_poll=_Recorder("driver_poll", log),
            detection=_Recorder("detection", log),  # never sets polled
            repair=_Recorder("repair", log),
            telemetry=_Recorder("telemetry", log),
        )
        scheduler.run(max_cycles=10**6)
        assert not any(hook == "check" for _, hook in log)

    def test_checkpoint_fanout_orders(self):
        ctx = _fake_context(slices=1)
        scheduler, log = _recording_scheduler(ctx)
        state = scheduler.checkpoint_state(ctx)
        # Save order: detection (pipeline + loop) then resilience
        # (journal watermark).
        assert log == [("detection", "save"), ("resilience", "save")]
        assert set(state) == {"detection", "resilience"}
        log.clear()
        scheduler.restore_state(ctx, state)
        # Restore order: detection (load/cold-start) then repair
        # (attachment reconciliation).
        assert log == [("detection", "restore"), ("repair", "restore")]

    def test_run_boundary_events(self):
        from repro.obs.trace import EventTracer

        ctx = _fake_context(slices=1)
        ctx.tracer = EventTracer(capacity=64)
        scheduler, _ = _recording_scheduler(ctx)
        scheduler.run(max_cycles=10**6)
        names = [event.name for event in ctx.tracer.events()]
        assert names[0] == "laser.run_begin"
        assert names[-1] == "laser.run_end"


# ----------------------------------------------------------------------
# Checkpoint round-trip with the real services
# ----------------------------------------------------------------------

class _FakePipeline:
    """state_dict/load/reset tracker standing in for DetectionPipeline."""

    def __init__(self):
        self.state = {"lines": 3}
        self.resets = 0

    def state_dict(self):
        return dict(self.state)

    def load_state_dict(self, state):
        self.state = dict(state)

    def reset_state(self):
        self.state = {}
        self.resets += 1


def _service_context():
    config = LaserConfig()
    ctx = _fake_context(config=config)
    ctx.pipeline = _FakePipeline()
    ctx.runtime = SimpleNamespace(
        journal=SimpleNamespace(acked_seq=17),
        attached_state=None,
        rolled_back=False,
    )
    resilience = ResilienceService()
    Scheduler(
        ctx,
        resilience=resilience,
        driver_poll=DriverPollService(resilience),
        detection=DetectionService(resilience),
        repair=RepairService(repairer=None, resilience=resilience),
        telemetry=TelemetryService(),
    )
    return ctx


class TestCheckpointRoundTrip:
    def test_payload_shape_matches_monolith(self):
        """The composed payload keeps the historical key layout."""
        ctx = _service_context()
        state = ctx.scheduler.checkpoint_state(ctx)
        assert set(state) == {"pipeline", "loop", "acked_seq"}
        assert state["acked_seq"] == 17
        assert state["pipeline"] == {"lines": 3}
        assert set(state["loop"]) == {
            "window_start", "stalled", "backoff_remaining",
            "backoff_current", "attach_rate", "windows_since_attach",
            "mark_cycle", "mark_hitm", "mark_aborts",
        }

    def test_loop_state_round_trips_per_service(self):
        ctx = _service_context()
        ctx.st.window_start = 150_000
        ctx.st.stalled = True
        ctx.st.backoff_remaining = 3
        ctx.st.attach_rate = 123.5
        state = ctx.scheduler.checkpoint_state(ctx)
        # Wreck the live state, then restore.
        ctx.st.reset_loop_state()
        ctx.pipeline.state = {"garbage": True}
        assert ctx.st.window_start == 0
        ctx.scheduler.restore_state(ctx, state)
        assert ctx.st.window_start == 150_000
        assert ctx.st.stalled is True
        assert ctx.st.backoff_remaining == 3
        assert ctx.st.attach_rate == 123.5
        assert ctx.pipeline.state == {"lines": 3}
        # Repair reconciliation against the runtime authority: nothing
        # attached, nothing rolled back.
        assert ctx.st.plan is None
        assert ctx.st.repaired is False
        assert ctx.st.rolled_back is False

    def test_cold_start_restore_resets_every_service(self):
        ctx = _service_context()
        ctx.st.window_start = 99
        ctx.scheduler.restore_state(ctx, None)
        assert ctx.st.window_start == 0
        assert ctx.pipeline.resets == 1

    def test_rolled_back_authority_survives_restore(self):
        ctx = _service_context()
        ctx.runtime.rolled_back = True
        ctx.st.repaired = True  # stale in-memory claim
        ctx.scheduler.restore_state(ctx, None)
        assert ctx.st.repaired is False
        assert ctx.st.rolled_back is True


# ----------------------------------------------------------------------
# Fault-site routing through the services
# ----------------------------------------------------------------------

def _run_with_faults(**sites):
    plan = FaultPlan(seed=0)
    for site, at in sites.items():
        plan.add(site.replace("__", "."), at=at)
    laser = Laser(LaserConfig(seed=0), faults=plan)
    return laser.run_workload(get_workload("linear_regression"))


class TestFaultSiteRouting:
    """Each site lands in the service that owns it, visible in health."""

    def test_detector_stall_routes_to_driver_poll(self):
        result = _run_with_faults(detector__stall=(0,))
        assert result.health.detector_stalls == 1
        assert result.health.detector_restarts == 1  # next poll resyncs

    def test_detector_crash_routes_to_resilience(self):
        result = _run_with_faults(detector__crash=(0,))
        assert result.health.detector_crashes == 1
        assert result.health.detector_crash_restarts == 1

    def test_driver_crash_routes_to_resilience(self):
        result = _run_with_faults(driver__crash=(1,))
        assert result.health.driver_crashes == 1
        assert result.health.driver_crash_restarts == 1

    def test_repair_error_routes_to_repair(self):
        result = _run_with_faults(repair__error=(0,))
        assert result.health.repair_errors >= 1


# ----------------------------------------------------------------------
# RunHealth: single field registry
# ----------------------------------------------------------------------

class TestHealthRegistry:
    def test_derived_views_cover_every_registered_field(self):
        names = [field.name for field in RunHealth.FIELDS]
        assert tuple(names) == RunHealth._FIELDS
        assert RunHealth._INFO_FIELDS == frozenset(
            field.name for field in RunHealth.FIELDS if field.info
        )
        # Engine provenance slots live outside the counter registry on
        # purpose: as_dict/__eq__/degraded (and the golden health pins)
        # must stay engine-invariant.
        assert set(RunHealth.__slots__) == (
            set(names) | set(RunHealth._ENGINE_SLOTS)
        )
        for slot in RunHealth._ENGINE_SLOTS:
            assert slot not in RunHealth().as_dict()

    def test_as_dict_and_eq_track_the_registry(self):
        """No field can be silently omitted from equality/serialization."""
        for field in RunHealth.FIELDS:
            a, b = RunHealth(), RunHealth(**{field.name: 1})
            assert field.name in a.as_dict()
            assert a != b, "field %s invisible to __eq__" % field.name
            assert a.as_dict()[field.name] != b.as_dict()[field.name]

    def test_info_fields_do_not_degrade(self):
        for field in RunHealth.FIELDS:
            health = RunHealth(**{field.name: 5})
            assert health.degraded == (not field.info), field.name

    def test_field_spec_repr(self):
        assert "info" in repr(HealthField("x", info=True))


# ----------------------------------------------------------------------
# Golden bit-identity vs the pre-refactor monolith
# ----------------------------------------------------------------------

class TestGoldenBitIdentity:
    """cycles / report / trace bytes / telemetry bytes / health, pinned."""

    @pytest.mark.parametrize(
        "cell", load_golden(),
        ids=lambda cell: "%s-s%d-%s" % (
            cell["workload"], cell["seed"], cell["schedule"] or "clean"),
    )
    def test_run_built_matches_golden(self, cell):
        got = collect_cell(cell["workload"], cell["seed"], cell["schedule"])
        assert_cell_matches(got, cell)

    def test_golden_grid_shape(self):
        cells = load_golden()
        clean = [c for c in cells if c["schedule"] is None]
        chaotic = [c for c in cells if c["schedule"] is not None]
        assert len({(c["workload"], c["seed"]) for c in clean}) == 9
        assert len(chaotic) >= 6
        # The chaotic cells must actually exercise recovery machinery.
        assert any(c["health"]["checkpoints_restored"] for c in chaotic)
        assert any(c["health"]["records_deduped"] for c in chaotic)
        assert any(c["health"]["checkpoints_corrupt"] for c in chaotic)


# ----------------------------------------------------------------------
# The parallel sweep runner
# ----------------------------------------------------------------------

def _double(x):
    return x * 2


class TestSweepRunner:
    def test_serial_map_preserves_order(self):
        runner = SweepRunner(workers=1)
        assert runner.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert runner.used_workers == 1

    def test_pool_map_matches_serial(self):
        cells = list(range(12))
        serial = SweepRunner(workers=1).map(_double, cells)
        pooled = SweepRunner(workers=2)
        assert pooled.map(_double, cells) == serial

    def test_single_cell_short_circuits_the_pool(self):
        runner = SweepRunner(workers=8)
        assert runner.map(_double, [21]) == [42]
        assert runner.used_workers == 1

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_map_records_per_cell_cost(self):
        runner = SweepRunner(workers=1)
        assert runner.cost_summary() == "sweep cost: no cells run"
        assert runner.map(_double, [1, 2, 3]) == [2, 4, 6]
        # Timing is a pure observation: results above are untouched,
        # and every cell got a (non-negative) host-seconds reading.
        assert len(runner.cell_seconds) == 3
        assert all(seconds >= 0 for seconds in runner.cell_seconds)
        assert runner.total_cell_seconds == sum(runner.cell_seconds)
        assert runner.elapsed_seconds >= 0
        summary = runner.cost_summary()
        assert "3 cells" in summary and "1 worker(s)" in summary

    def test_pooled_map_still_records_cell_cost(self):
        runner = SweepRunner(workers=2)
        assert runner.map(_double, list(range(6))) == [
            0, 2, 4, 6, 8, 10]
        assert len(runner.cell_seconds) == 6

    def test_chaos_soak_identical_at_any_worker_count(self):
        kwargs = dict(workloads=("histogram'",),
                      schedules=("detector-mid", "driver-early"),
                      seeds=(0,))
        serial = run_chaos_soak(workers=1, **kwargs)
        pooled = run_chaos_soak(workers=2, **kwargs)
        assert [o.as_dict() for o in serial] == [o.as_dict() for o in pooled]
        assert all(outcome.converged for outcome in pooled)

    def test_threshold_sweep_identical_at_any_worker_count(self):
        workloads = [get_workload("histogram"), get_workload("histogram'")]
        serial = run_threshold_sweep(workloads=workloads, workers=1,
                                     thresholds=[256.0, 4096.0])
        pooled = run_threshold_sweep(workloads=workloads, workers=2,
                                     thresholds=[256.0, 4096.0])
        assert serial.points == pooled.points


# ----------------------------------------------------------------------
# Structural guard: laser.py stays a slim composition root
# ----------------------------------------------------------------------

class TestKernelStructure:
    def test_laser_module_stays_under_400_lines(self):
        """AST-parse the composition root and bound its source extent.

        The service kernel exists so run_built never re-accretes into a
        monolith; parsing (rather than counting text lines) means
        comments can't hide code past the bound and syntax errors fail
        loudly here too.
        """
        with open(LASER_PATH) as fh:
            source = fh.read()
        tree = ast.parse(source)
        last_line = max(
            (node.end_lineno or 0 for node in ast.walk(tree)
             if hasattr(node, "end_lineno")),
            default=0,
        )
        assert last_line < 400, (
            "core/laser.py has grown to %d lines; move logic into "
            "repro.core.services instead" % last_line
        )
        assert len(source.splitlines()) < 400

    def test_laser_defines_no_loop_helpers(self):
        """The monolith's private loop methods must not creep back."""
        with open(LASER_PATH) as fh:
            tree = ast.parse(fh.read())
        methods = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        forbidden = {"_supervise", "_repair_step", "_record_window",
                     "_restore_detector", "_process_poll",
                     "_finalize_health", "_maybe_repair"}
        assert not (methods & forbidden)
