"""Shared program-building helpers for the test suite."""

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.sim.machine import Machine


def counter_thread(base_addr: int, iters: int, stride: int = 0, tid: int = 0,
                   use_addm: bool = False):
    """A thread incrementing a counter at base_addr + tid*stride."""
    asm = Assembler("counter_%d" % tid)
    asm.at("counter.c", 10)
    asm.mov("r1", base_addr + tid * stride)
    asm.mov("r0", iters)
    asm.label("loop")
    asm.at("counter.c", 14)
    if use_addm:
        asm.addm("r1", 1, size=8)
    else:
        asm.load("r2", "r1", size=8)
        asm.add("r2", "r2", 1)
        asm.store("r1", "r2", size=8)
    asm.at("counter.c", 18)
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    return asm.build()


def make_counter_program(num_threads: int = 4, iters: int = 200,
                         stride: int = 8, base: int = 0x10000040,
                         use_addm: bool = False) -> Program:
    """A canonical false-sharing program (distinct words, one line)."""
    return Program(
        "counters",
        [counter_thread(base, iters, stride, tid, use_addm)
         for tid in range(num_threads)],
    )


def run_program(program: Program, seed: int = 0, **kwargs):
    machine = Machine(program, seed=seed, **kwargs)
    result = machine.run()
    return machine, result


