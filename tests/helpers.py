"""Shared program-building helpers for the test suite."""

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.sim.allocator import Allocator
from repro.sim.machine import Machine
from repro.workloads.base import BuiltWorkload


def counter_thread(base_addr: int, iters: int, stride: int = 0, tid: int = 0,
                   use_addm: bool = False):
    """A thread incrementing a counter at base_addr + tid*stride."""
    asm = Assembler("counter_%d" % tid)
    asm.at("counter.c", 10)
    asm.mov("r1", base_addr + tid * stride)
    asm.mov("r0", iters)
    asm.label("loop")
    asm.at("counter.c", 14)
    if use_addm:
        asm.addm("r1", 1, size=8)
    else:
        asm.load("r2", "r1", size=8)
        asm.add("r2", "r2", 1)
        asm.store("r1", "r2", size=8)
    asm.at("counter.c", 18)
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    return asm.build()


def make_counter_program(num_threads: int = 4, iters: int = 200,
                         stride: int = 8, base: int = 0x10000040,
                         use_addm: bool = False) -> Program:
    """A canonical false-sharing program (distinct words, one line)."""
    return Program(
        "counters",
        [counter_thread(base, iters, stride, tid, use_addm)
         for tid in range(num_threads)],
    )


def run_program(program: Program, seed: int = 0, **kwargs):
    machine = Machine(program, seed=seed, **kwargs)
    result = machine.run()
    return machine, result


SHIFT_FILE = "shift.c"
SHIFT_EARLY_PC_LINE = 14   # the instrumented addm in the early threads
SHIFT_LATE_PC_LINE = 54    # the never-instrumented addm in the late threads


def _shift_early_thread(tid: int, line_a: int, private: int,
                        i1: int, i2: int):
    """A hot addm whose target shifts from contended to private data.

    The addm at shift.c:14 is what LASER instruments when line_a's
    false sharing triggers repair; once the loop switches to the
    thread-private target, the instrumentation is pure overhead (an
    SSB store against an L1 hit) with nothing left to absorb.
    """
    asm = Assembler("shift_early_%d" % tid)
    asm.at(SHIFT_FILE, 8)
    asm.mov("r3", line_a + tid * 8)
    asm.mov("r4", private + tid * 128)
    asm.mov("r0", i1 + i2)
    asm.label("loop")
    asm.at(SHIFT_FILE, 12)
    asm.blt("r0", i2 + 1, "private_phase")
    asm.mov("r1", "r3")
    asm.jmp("work")
    asm.label("private_phase")
    asm.mov("r1", "r4")
    asm.label("work")
    asm.at(SHIFT_FILE, SHIFT_EARLY_PC_LINE)
    asm.addm("r1", 1, size=8)
    asm.at(SHIFT_FILE, 16)
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    return asm.build()


def _shift_late_thread(tid: int, line_b: int, private: int,
                       n1: int, n2: int):
    """Private warm-up, then false sharing on line_b at a fresh PC."""
    asm = Assembler("shift_late_%d" % tid)
    asm.at(SHIFT_FILE, 40)
    asm.mov("r1", private + tid * 128)
    asm.mov("r0", n1)
    asm.label("warmup")
    asm.at(SHIFT_FILE, 44)
    asm.addm("r1", 1, size=8)
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "warmup")
    asm.at(SHIFT_FILE, 50)
    asm.mov("r1", line_b + (tid - 2) * 8)
    asm.mov("r0", n2)
    asm.label("contend")
    asm.at(SHIFT_FILE, SHIFT_LATE_PC_LINE)
    asm.addm("r1", 1, size=8)
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "contend")
    asm.halt()
    return asm.build()


def build_shifted_workload(i1: int = 4000, i2: int = 20000,
                           n1: int = None, n2: int = 5000) -> BuiltWorkload:
    """A workload whose contention *moves* mid-run (watchdog fodder).

    Threads 0-1 falsely share line A through the addm at shift.c:14
    during phase 1, then shift to thread-private data — so a repair
    attached for line A stops paying off.  Threads 2-3 warm up on
    private data, then start falsely sharing line B through shift.c:54,
    a PC no repair plan covers: the post-repair HITM rate rebounds and
    the watchdog should detach.  With rollback disabled the early
    threads drag their now-useless instrumentation through the whole
    private phase, which is measurably slower end to end.
    """
    allocator = Allocator(base_offset=0)
    line_a = allocator.malloc(64, align=64, label="phase1_line")
    line_b = allocator.malloc(64, align=64, label="phase2_line")
    private = allocator.malloc(4 * 128, align=64, label="private")
    if n1 is None:
        n1 = i1 * 12  # private iterations are far cheaper than contended
    threads = [
        _shift_early_thread(0, line_a, private, i1, i2),
        _shift_early_thread(1, line_a, private, i1, i2),
        _shift_late_thread(2, line_b, private, n1, n2),
        _shift_late_thread(3, line_b, private, n1, n2),
    ]
    return BuiltWorkload(Program("shifted", threads), allocator)


