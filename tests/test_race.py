"""Tests for the static race certifier (``repro.static.mhp`` / ``race``).

Covers the MHP happens-before rules (flag handoff, counting barrier),
the branch-divergent lock-release lockset regression, the pair
classification lattice, certificate serialization and determinism, the
racy workload variants, the repair-time race gate (quarantine), the
certificate-driven record prefilter, and the CLI / golden-verdict exit
codes.
"""

import pytest

from repro.core.config import LaserConfig
from repro.core.detect.filters import RecordFilter
from repro.core.laser import Laser
from repro.experiments.race_cmp import GROUND_TRUTH, run_race_cmp
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.pebs.events import StrippedRecord
from repro.sim.locks import (
    emit_barrier_wait,
    emit_lock_release,
    emit_naive_lock_acquire,
)
from repro.sim.vmmap import (
    APP_CODE_BASE,
    GLOBALS_BASE,
    HEAP_BASE,
    default_memory_map,
)
from repro.static import racecheck
from repro.static.__main__ import main as static_main
from repro.static.absint import analyze_thread_values, thread_entry_registers
from repro.static.lockset import analyze_locksets, collect_lock_addresses
from repro.static.mhp import analyze_mhp
from repro.static.race import (
    LineVerdict,
    SharingCertificate,
    certify_built,
    certify_program,
)
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    variant_workloads,
)

from helpers import make_counter_program

DATA = HEAP_BASE + 0x40
FLAG = HEAP_BASE + 0x80
LOCK = HEAP_BASE + 0x200
WORD = HEAP_BASE + 0x2C0


def _indices_at(code, line):
    """Instruction indices carrying debug line ``line``."""
    return [i for i, inst in enumerate(code.instructions)
            if inst.loc is not None and inst.loc.line == line]


def _store_at(code, line):
    """The single store instruction tagged with ``line``."""
    (idx,) = [i for i in _indices_at(code, line)
              if code.instructions[i].is_store]
    return idx


def _load_at(code, line):
    """The single load instruction tagged with ``line``."""
    (idx,) = [i for i in _indices_at(code, line)
              if code.instructions[i].is_load]
    return idx


def _handoff_program(with_flag: bool) -> Program:
    """t0 writes DATA (then raises FLAG); t1 (waits, then) reads DATA."""
    asm = Assembler("writer")
    asm.at("handoff.c", 10)
    asm.mov("r1", DATA)
    asm.store("r1", 7, size=8)
    if with_flag:
        asm.at("handoff.c", 11)
        asm.mov("r2", FLAG)
        asm.store("r2", 1, size=8)
    asm.halt()
    writer = asm.build()

    asm = Assembler("reader")
    if with_flag:
        asm.mov("r2", FLAG)
        asm.label("wait")
        asm.at("handoff.c", 20)
        asm.load("r3", "r2", size=8)
        asm.beq("r3", 0, "wait")
    asm.at("handoff.c", 21)
    asm.mov("r1", DATA)
    asm.load("r4", "r1", size=8)
    asm.halt()
    return Program("handoff", [writer, asm.build()])


def _barrier_program(num_threads: int = 2) -> Program:
    """Each thread writes its word, joins a barrier, reads a peer's."""
    threads = []
    for tid in range(num_threads):
        asm = Assembler("t%d" % tid)
        asm.at("barrier.c", 5)
        asm.mov("r1", DATA + 8 * tid)
        asm.store("r1", 1, size=8)
        asm.at("barrier.c", 15)
        asm.mov("r9", FLAG)
        emit_barrier_wait(asm, "r9", num_threads, "b%d" % tid)
        asm.at("barrier.c", 30)
        asm.mov("r6", DATA + 8 * ((tid + 1) % num_threads))
        asm.load("r7", "r6", size=8)
        asm.halt()
        threads.append(asm.build())
    return Program("barrier", threads)


def _two_symmetric(body) -> Program:
    """Two threads running ``body(asm)`` (same code, both tids)."""
    threads = []
    for tid in range(2):
        asm = Assembler("t%d" % tid)
        body(asm)
        asm.halt()
        threads.append(asm.build())
    return Program("sym", threads)


# ----------------------------------------------------------------------
# MHP: flag handoff and counting barrier
# ----------------------------------------------------------------------

class TestMhp:
    def test_flag_handoff_orders_data_accesses(self):
        program = _handoff_program(with_flag=True)
        mhp = analyze_mhp(program)
        write_idx = _store_at(program.threads[0], 10)
        read_idx = _load_at(program.threads[1], 21)
        assert mhp.ordered(0, write_idx, 1, read_idx)
        assert not mhp.may_happen_in_parallel(0, write_idx, 1, read_idx)
        # The flag word itself is recognized synchronization traffic.
        assert (FLAG, 8) in mhp.sync_addresses

    def test_no_flag_means_concurrent(self):
        program = _handoff_program(with_flag=False)
        mhp = analyze_mhp(program)
        write_idx = _store_at(program.threads[0], 10)
        read_idx = _load_at(program.threads[1], 21)
        assert mhp.may_happen_in_parallel(0, write_idx, 1, read_idx)
        assert not mhp.sync_addresses

    def test_seeded_flag_word_defeats_handoff_rule(self):
        # A flag that may start nonzero cannot prove ordering: the wait
        # could fall through before the writer ever stored.
        program = _handoff_program(with_flag=True)
        mhp = analyze_mhp(program, init_addrs=[FLAG])
        write_idx = _store_at(program.threads[0], 10)
        read_idx = _load_at(program.threads[1], 21)
        assert mhp.may_happen_in_parallel(0, write_idx, 1, read_idx)

    def test_joined_threads_not_concurrent_across_barrier(self):
        # Regression: a thread that joined the others at a counting
        # barrier must not be reported concurrent with their
        # pre-barrier accesses.
        program = _barrier_program()
        mhp = analyze_mhp(program)
        t1_write = _store_at(program.threads[1], 5)
        t0_read = _load_at(program.threads[0], 30)
        assert mhp.ordered(1, t1_write, 0, t0_read)
        assert not mhp.may_happen_in_parallel(1, t1_write, 0, t0_read)

    def test_same_thread_pairs_are_program_ordered(self):
        program = _handoff_program(with_flag=False)
        mhp = analyze_mhp(program)
        assert mhp.ordered(0, 0, 0, 1)


# ----------------------------------------------------------------------
# Locksets: branch-divergent release (must-intersection at the join)
# ----------------------------------------------------------------------

class TestBranchDivergentRelease:
    def _analyze(self):
        asm = Assembler("div")
        asm.at("div.c", 3)
        asm.mov("r1", LOCK)
        emit_naive_lock_acquire(asm, "r1", "t")
        asm.at("div.c", 10)
        asm.mov("r2", DATA)
        asm.store("r2", 1, size=8)
        asm.load("r3", "r2", size=8)
        asm.beq("r3", 0, "skip")
        asm.at("div.c", 15)
        emit_lock_release(asm, "r1")
        asm.label("skip")
        asm.at("div.c", 20)
        asm.store("r2", 2, size=8)
        asm.halt()
        code = asm.build()
        values = analyze_thread_values(
            code, entry_registers=thread_entry_registers(0))
        universe = frozenset(collect_lock_addresses(values))
        return code, universe, analyze_locksets(values, universe)

    def test_lock_recognized_and_held_in_critical_section(self):
        code, universe, locksets = self._analyze()
        assert LOCK in universe
        assert LOCK in locksets.held_at(_store_at(code, 10))

    def test_release_on_one_path_empties_join_lockset(self):
        # Lock released on only one CFG path: the must-intersection at
        # the join cannot claim it is held.
        code, _universe, locksets = self._analyze()
        assert locksets.held_at(_store_at(code, 20)) == frozenset()


# ----------------------------------------------------------------------
# Pair classification lattice
# ----------------------------------------------------------------------

class TestClassification:
    def test_plain_rmw_same_word_is_race(self):
        program = _two_symmetric(lambda asm: (
            asm.at("w.c", 4), asm.mov("r1", WORD),
            asm.addm("r1", 1, size=8)))
        cert = certify_program(program)
        assert cert.unsafe
        assert cert.verdict_for_line(WORD // 64) is LineVerdict.RACE
        assert SourceLocation("w.c", 4) in cert.racy_locations()

    def test_atomic_xadd_same_word_is_sync(self):
        program = _two_symmetric(lambda asm: (
            asm.at("w.c", 4), asm.mov("r1", WORD),
            asm.xadd("r2", "r1", 1, size=8)))
        cert = certify_program(program)
        assert not cert.unsafe
        assert (cert.verdict_for_line(WORD // 64)
                is LineVerdict.SYNC_TRUE_SHARING)

    def test_locked_update_is_sync_true_sharing(self):
        def body(asm):
            asm.at("w.c", 3)
            asm.mov("r1", LOCK)
            emit_naive_lock_acquire(asm, "r1", "u")
            asm.at("w.c", 8)
            asm.mov("r2", WORD)
            asm.addm("r2", 1, size=8)
            emit_lock_release(asm, "r1")
        cert = certify_program(_two_symmetric(body))
        assert not cert.unsafe
        assert (cert.verdict_for_line(WORD // 64)
                is LineVerdict.SYNC_TRUE_SHARING)

    def test_disjoint_words_same_line_is_false_sharing(self):
        program = make_counter_program(
            num_threads=2, iters=4, stride=8, base=DATA, use_addm=True)
        cert = certify_program(program)
        assert not cert.unsafe
        assert cert.verdict_for_line(DATA // 64) is LineVerdict.FALSE_SHARING

    def test_unshared_lines_are_thread_local(self):
        program = make_counter_program(
            num_threads=2, iters=4, stride=64, base=DATA, use_addm=True)
        cert = certify_program(program)
        assert not cert.unsafe
        for line in (DATA // 64, DATA // 64 + 1):
            assert cert.verdict_for_line(line) is LineVerdict.THREAD_LOCAL
        # Thread-local lines are not worth detection budget.
        assert cert.priority_lines() == set()

    def test_flag_handoff_certifies_safe_no_flag_race(self):
        safe = certify_program(_handoff_program(with_flag=True))
        assert not safe.unsafe
        assert (safe.verdict_for_line(DATA // 64)
                is LineVerdict.SYNC_TRUE_SHARING)
        racy = certify_program(_handoff_program(with_flag=False))
        assert racy.unsafe
        assert racy.verdict_for_line(DATA // 64) is LineVerdict.RACE


# ----------------------------------------------------------------------
# Certificate object: determinism, serialization, gate verdicts
# ----------------------------------------------------------------------

class TestCertificate:
    def test_serialization_roundtrip(self):
        cert = certify_program(_handoff_program(with_flag=False))
        again = SharingCertificate.from_json(cert.to_json())
        assert again.to_json() == cert.to_json()
        assert again.unsafe == cert.unsafe
        assert again.counts() == cert.counts()
        for loc in cert.racy_locations():
            assert again.gate_verdict_for_location(loc) is LineVerdict.RACE

    def test_certification_is_deterministic(self):
        program = _handoff_program(with_flag=False)
        assert (certify_program(program).to_json()
                == certify_program(program).to_json())

    def test_gate_verdict_joins_over_touched_lines(self):
        # racy_counter's repair trigger is its increment line: its own
        # pairs are only false sharing, but the line it touches carries
        # a race — the gate verdict must join over the line.
        workload = get_workload("racy_counter")
        built = workload.build(heap_offset=0, seed=0)
        cert = certify_built(built)
        inc_loc = SourceLocation(workload.FILE, workload.INC_LINE)
        assert cert.verdict_for_location(inc_loc) is not LineVerdict.RACE
        assert cert.gate_verdict_for_location(inc_loc) is LineVerdict.RACE

    def test_render_smoke(self):
        cert = certify_program(_handoff_program(with_flag=False))
        text = cert.render()
        assert "RACE" in text


# ----------------------------------------------------------------------
# Racy workload variants (positive controls)
# ----------------------------------------------------------------------

class TestVariants:
    def test_registry_unchanged_and_variants_resolvable(self):
        assert len(all_workloads()) == 35
        names = [w.name for w in variant_workloads()]
        assert names == ["racy_counter", "racy_handoff"]
        for name in names:
            assert get_workload(name).name == name

    @pytest.mark.parametrize("name", ["racy_counter", "racy_handoff"])
    def test_variant_certifies_race_at_declared_locations(self, name):
        workload = get_workload(name)
        built = workload.build(heap_offset=0, seed=0)
        cert = certify_built(built)
        assert cert.unsafe
        blamed = set(cert.racy_locations())
        assert set(workload.race_locations) <= blamed


# ----------------------------------------------------------------------
# Runtime wiring: quarantine gate and record prefilter
# ----------------------------------------------------------------------

def _run(name, **overrides):
    cfg = LaserConfig(seed=0, trace_enabled=True, **overrides)
    return Laser(cfg).run_workload(get_workload(name))


@pytest.mark.static
class TestRaceGate:
    def test_gate_off_repairs_racy_workload(self):
        result = _run("racy_counter")
        assert result.repaired
        assert result.health.repairs_quarantined == 0

    def test_gate_on_quarantines_racy_workload(self):
        result = _run("racy_counter", race_gate=True)
        assert not result.repaired
        assert result.health.repairs_quarantined > 0
        events = result.telemetry.tracer.events_named("repair.quarantine")
        assert events
        assert "racy_counter.c:33" in events[0].args["lines"]

    def test_gate_is_inert_on_safe_workload(self):
        off = _run("linear_regression")
        on = _run("linear_regression", race_gate=True)
        assert on.cycles == off.cycles
        assert on.repaired == off.repaired
        assert on.report.render() == off.report.render()
        assert on.health.repairs_quarantined == 0


@pytest.mark.static
class TestStaticPrefilter:
    def test_prefilter_installed_and_harmless_on_safe_workload(self):
        off = _run("linear_regression")
        on = _run("linear_regression", static_prefilter=True)
        assert on.pipeline.filter.line_priorities is not None
        assert on.cycles == off.cycles
        assert on.report.render() == off.report.render()
        assert (on.health.records_filtered_static
                == on.pipeline.filter.dropped_unprioritized)

    def test_prefilter_fails_open_on_clipped_certificate(self):
        # bodytrack's certificate clips footprints (incomplete): the
        # filter must not be installed from partial knowledge.
        built = get_workload("bodytrack").build(heap_offset=0, seed=0)
        assert not certify_built(built).complete
        result = _run("bodytrack", static_prefilter=True)
        assert result.pipeline.filter.line_priorities is None


class TestRecordFilterPriorities:
    def _filter(self):
        vmmap = default_memory_map(
            num_threads=2, app_code_end=APP_CODE_BASE + 0x2_0000)
        return RecordFilter(vmmap, line_priorities={HEAP_BASE // 64})

    def _record(self, data_addr):
        return StrippedRecord(pc=APP_CODE_BASE + 4, data_addr=data_addr,
                              core=0, cycle=100)

    def test_priority_heap_line_admitted(self):
        rf = self._filter()
        assert rf.admit(self._record(HEAP_BASE + 8))
        assert rf.dropped_unprioritized == 0

    def test_unprioritized_heap_line_dropped(self):
        rf = self._filter()
        assert not rf.admit(self._record(HEAP_BASE + 4096))
        assert rf.dropped_unprioritized == 1
        assert rf.total_seen == 1

    def test_unmapped_and_non_heap_addresses_pass_through(self):
        # PEBS imprecision: garbage data addresses still carry real
        # PCs; the certificate cannot speak about them.
        rf = self._filter()
        assert rf.admit(self._record(0x3333_3333_3333))
        assert rf.admit(self._record(GLOBALS_BASE + 8))
        assert rf.dropped_unprioritized == 0

    def test_no_priorities_means_admit_everything(self):
        vmmap = default_memory_map(
            num_threads=2, app_code_end=APP_CODE_BASE + 0x2_0000)
        rf = RecordFilter(vmmap)
        assert rf.line_priorities is None
        assert rf.admit(self._record(HEAP_BASE + 4096))


# ----------------------------------------------------------------------
# CLIs, goldens, and the accuracy harness
# ----------------------------------------------------------------------

@pytest.mark.static
class TestCliAndGoldens:
    def test_racecheck_matches_committed_goldens(self, capsys):
        assert racecheck.main([]) == 0
        assert "racecheck: OK" in capsys.readouterr().out

    def test_racecheck_single_workload_exit_codes(self, capsys):
        assert racecheck.main(["linear_regression"]) == 0
        assert racecheck.main(["racy_counter"]) == 1
        capsys.readouterr()

    def test_static_cli_exits_nonzero_on_unsafe(self, capsys):
        assert static_main(["linear_regression"]) == 0
        assert static_main(["racy_handoff"]) == 1
        assert "unsafe" in capsys.readouterr().out

    def test_race_cmp_sharding_matches_serial(self):
        names = ["linear_regression", "histogram", "racy_counter"]
        serial = run_race_cmp(names=names, workers=1)
        sharded = run_race_cmp(names=names, workers=2)
        assert serial.render() == sharded.render()
        assert serial.row_for("racy_counter").outcome == "TP"
        assert serial.row_for("histogram").outcome == "FP"
        assert serial.row_for("linear_regression").outcome == "TN"

    def test_ground_truth_covers_registry_exactly(self):
        assert ({w.name for w in all_workloads()} == set(GROUND_TRUTH))
