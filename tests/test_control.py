"""Overload control: the hysteresis ladder, admission shedding, soaks.

Five layers of assurance for :mod:`repro.control` and its mount point
in the service kernel:

* **Control law** — the ladder's escalation/recovery streak logic, the
  knob table (SAV cap, poll stretch, budget scaling), flow
  normalization (the controller cannot be fooled by its own
  actuation) and checkpoint round-trips, all pure-unit.
* **Admission boundary** — the driver sheds over-budget deliveries
  before the journal and the buffers, re-arms per interval, and
  accounts every shed record explicitly.
* **Burst soaks** — a ``load.burst`` record storm on three workloads
  drives the exact NOMINAL→THROTTLED→SHEDDING ladder walk and the
  recovery back to NOMINAL, never exceeds the admission budget in any
  interval, and still reports every line the storm-free run reports.
* **Composition** — a detector crash mid-shed restores the controller
  from its checkpoint contribution and re-actuates the same knobs;
  a stuck controller freezes knobs but not the budget.
* **Determinism** — controller-on runs are byte-identical per seed
  (trace and window streams), controller-off runs serialize no
  control fields at all, and the frontier sweep merges identically
  at any worker count.
"""

import json

import pytest

from repro.control import (
    ControlMode,
    ControlSignals,
    KnobSettings,
    OverloadController,
)
from repro.core import Laser, LaserConfig
from repro.experiments.frontier import run_frontier_sweep
from repro.faults import FaultPlan
from repro.pebs.driver import KernelDriver
from repro.pebs.events import PebsRecord
from repro.workloads import get_workload

pytestmark = pytest.mark.control


def make_controller(**overrides):
    kwargs = dict(
        base_sav=19, base_interval_cycles=50_000, budget_records=128,
        overload_ratio=1.0, recover_ratio=0.5, escalate_after=2,
        recover_after=3, passthrough_after=6, sav_step=2, poll_step=2,
        max_sav=512,
    )
    kwargs.update(overrides)
    return OverloadController(**kwargs)


def overloaded(sav=19, duration=50_000):
    """Signals well past the overload threshold at the given knobs."""
    return ControlSignals(records_offered=1_000, sample_after_value=sav,
                          duration_cycles=duration)


def calm(sav=19, duration=50_000):
    return ControlSignals(records_offered=10, sample_after_value=sav,
                          duration_cycles=duration)


# ----------------------------------------------------------------------
# The control law (pure unit)
# ----------------------------------------------------------------------

class TestControlLaw:
    def test_escalates_after_streak(self):
        ctl = make_controller(escalate_after=2)
        assert not ctl.evaluate(overloaded())
        assert ctl.mode == ControlMode.NOMINAL
        assert ctl.evaluate(overloaded())
        assert ctl.mode == ControlMode.THROTTLED

    def test_full_ladder_walk_and_passthrough_bar(self):
        ctl = make_controller(escalate_after=1, passthrough_after=3)
        sav, dur = 19, 50_000
        walk = [ControlMode.NOMINAL]
        for _ in range(8):
            ctl.evaluate(overloaded(sav=sav, duration=dur))
            walk.append(ctl.mode)
            knobs = ctl.knobs()
            sav, dur = knobs.sample_after_value, knobs.poll_interval_cycles
        # One overloaded interval per ordinary rung, but the final rung
        # (parking the monitor) takes the longer passthrough_after bar.
        assert walk == [
            "nominal", "throttled", "shedding",
            "shedding", "shedding", "passthrough",
            "passthrough", "passthrough", "passthrough",
        ]

    def test_recovery_descends_one_rung_per_streak(self):
        ctl = make_controller(escalate_after=1, recover_after=2)
        ctl.evaluate(overloaded())
        ctl.evaluate(overloaded(sav=38, duration=100_000))
        assert ctl.mode == ControlMode.SHEDDING
        knobs = ctl.knobs()
        quiet = calm(sav=knobs.sample_after_value,
                     duration=knobs.poll_interval_cycles)
        assert not ctl.evaluate(quiet)
        assert ctl.evaluate(quiet)
        assert ctl.mode == ControlMode.THROTTLED

    def test_hysteresis_band_resets_both_streaks(self):
        ctl = make_controller(escalate_after=2)
        # In-between flow: above recover_ratio, below overload_ratio.
        between = ControlSignals(records_offered=100,
                                 sample_after_value=19,
                                 duration_cycles=50_000)
        ctl.evaluate(overloaded())
        assert ctl.overload_streak == 1
        ctl.evaluate(between)
        assert ctl.overload_streak == 0 and ctl.calm_streak == 0
        assert ctl.mode == ControlMode.NOMINAL

    def test_drops_count_as_overload_regardless_of_flow(self):
        ctl = make_controller(escalate_after=1)
        signals = ControlSignals(records_offered=1, sample_after_value=19,
                                 duration_cycles=50_000, records_dropped=3)
        assert ctl.evaluate(signals)
        assert ctl.mode == ControlMode.THROTTLED

    def test_backlog_or_latency_block_recovery(self):
        ctl = make_controller(escalate_after=1, recover_after=1)
        ctl.evaluate(overloaded())
        knobs = ctl.knobs()
        lagging = ControlSignals(
            records_offered=10, sample_after_value=knobs.sample_after_value,
            duration_cycles=knobs.poll_interval_cycles,
            detect_latency=knobs.poll_interval_cycles + 1,
        )
        assert not ctl.evaluate(lagging)
        assert ctl.mode == ControlMode.THROTTLED

    def test_normalized_flow_undoes_actuation(self):
        ctl = make_controller()
        base = ctl.normalized_flow(
            ControlSignals(records_offered=400, sample_after_value=19,
                           duration_cycles=50_000))
        # Doubled SAV and doubled interval: a quarter of the records,
        # but the same source flow.
        throttled = ctl.normalized_flow(
            ControlSignals(records_offered=400, sample_after_value=38,
                           duration_cycles=100_000))
        assert throttled == pytest.approx(base)

    def test_knob_table(self):
        ctl = make_controller()
        nominal = ctl.knobs_for(ControlMode.NOMINAL)
        assert (nominal.sample_after_value, nominal.sample_weight,
                nominal.poll_interval_cycles,
                nominal.admission_budget) == (19, 1, 50_000, None)
        throttled = ctl.knobs_for(ControlMode.THROTTLED)
        assert (throttled.sample_after_value, throttled.sample_weight,
                throttled.poll_interval_cycles,
                throttled.admission_budget) == (38, 2, 100_000, 256)
        shedding = ctl.knobs_for(ControlMode.SHEDDING)
        assert (shedding.sample_after_value, shedding.sample_weight,
                shedding.poll_interval_cycles,
                shedding.admission_budget) == (76, 4, 200_000, 128)
        parked = ctl.knobs_for(ControlMode.PASSTHROUGH)
        assert parked.admission_budget == 0

    def test_sav_cap(self):
        ctl = make_controller(max_sav=40)
        assert ctl.knobs_for(ControlMode.SHEDDING).sample_after_value == 40
        assert ctl.knobs_for(ControlMode.SHEDDING).sample_weight == 2

    def test_state_dict_round_trip(self):
        ctl = make_controller(escalate_after=1)
        ctl.evaluate(overloaded())
        ctl.evaluate(overloaded(sav=38, duration=100_000))
        ctl.stuck_intervals = 2
        state = json.loads(json.dumps(ctl.state_dict()))
        fresh = make_controller(escalate_after=1)
        fresh.load_state_dict(state)
        assert fresh.mode == ctl.mode
        assert fresh.mode_changes == ctl.mode_changes
        assert fresh.residency == ctl.residency
        assert fresh.stuck_intervals == 2
        assert fresh.knobs().as_dict() == ctl.knobs().as_dict()


# ----------------------------------------------------------------------
# The driver's admission boundary
# ----------------------------------------------------------------------

def _record(i):
    return PebsRecord(pc=0x400000 + i, data_addr=0x1000 + i, core=0,
                      cycle=i, store_triggered=False)


class TestAdmissionControl:
    def test_budget_sheds_excess_deliveries(self):
        driver = KernelDriver()
        driver.set_admission(3)
        for i in range(5):
            driver.deliver(_record(i))
        assert driver.records_shed == 2
        assert driver.pending_records == 3

    def test_rearm_resets_the_interval_meter(self):
        driver = KernelDriver()
        driver.set_admission(2)
        for i in range(4):
            driver.deliver(_record(i))
        assert driver.records_shed == 2
        driver.set_admission(2)
        driver.deliver(_record(9))
        assert driver.records_shed == 2  # new interval, fresh meter

    def test_zero_budget_parks_and_none_lifts(self):
        driver = KernelDriver()
        driver.set_admission(0)
        driver.deliver(_record(0))
        assert driver.records_shed == 1 and driver.pending_records == 0
        driver.set_admission(None)
        for i in range(10):
            driver.deliver(_record(i))
        assert driver.records_shed == 1 and driver.pending_records == 10

    def test_shed_records_never_reach_the_journal(self):
        class CountingJournal:
            appended = 0

            def append(self, stripped):
                self.appended += 1
                return self.appended

        journal = CountingJournal()
        driver = KernelDriver(journal=journal)
        driver.set_admission(1)
        for i in range(4):
            driver.deliver(_record(i))
        assert driver.records_shed == 3
        assert journal.appended == 1

    def test_budget_validation(self):
        driver = KernelDriver()
        with pytest.raises(ValueError):
            driver.set_admission(-1)


# ----------------------------------------------------------------------
# Burst soaks: the closed loop end to end
# ----------------------------------------------------------------------

#: (workload, burst probability, burst max_fires, budget, pinned walk).
#: The walk is the per-window mode sequence — mode *at window close*,
#: so the storm's escalations appear one window after they actuate.
SOAK_CASES = [
    ("linear_regression", 0.5, 1200, 128,
     ["nominal", "throttled", "shedding", "throttled", "nominal"]),
    ("kmeans", 0.5, 1200, 128,
     ["nominal", "throttled", "shedding", "shedding", "throttled",
      "nominal"]),
    ("volrend", 0.7, 600, 64,
     ["nominal", "throttled", "shedding", "throttled", "nominal"]),
]


def soak_config(budget):
    return LaserConfig().replace(
        seed=0, trace_enabled=True, control_enabled=True,
        repair_enabled=False, control_budget_records=budget,
        control_escalate_after=1, control_recover_after=1,
        control_passthrough_after=8,
    )


def run_soak(name, probability, max_fires, budget):
    cfg = soak_config(budget)
    baseline = Laser(cfg).run_workload(get_workload(name))
    plan = FaultPlan(seed=0).add("load.burst", probability=probability,
                                 max_fires=max_fires)
    burst = Laser(cfg, faults=plan).run_workload(get_workload(name))
    return baseline, burst


class TestBurstSoak:
    @pytest.mark.parametrize(
        "name,probability,max_fires,budget,walk",
        SOAK_CASES, ids=[case[0] for case in SOAK_CASES])
    def test_ladder_walk_budget_and_reporting(self, name, probability,
                                              max_fires, budget, walk):
        baseline, burst = run_soak(name, probability, max_fires, budget)
        windows = burst.telemetry.windows

        # The pinned ladder walk: up under the storm, back to NOMINAL.
        assert [w.control_mode for w in windows] == walk

        # The admission budget is a hard bound in every budgeted
        # interval: offered minus shed is what the driver admitted.
        for window in windows:
            if window.admit_budget is not None:
                admitted = window.records_offered - window.records_shed
                assert admitted <= window.admit_budget, (
                    "window %d admitted %d > budget %d"
                    % (window.index, admitted, window.admit_budget))

        # Shedding engaged for real: the storm cost records, visibly.
        assert burst.driver.records_shed > 0
        assert burst.health.records_shed == burst.driver.records_shed

        # Overload costs time-to-detect, never coverage: every line the
        # storm-free run reports is still reported under the storm.
        base_lines = {str(loc) for loc
                      in baseline.report.reported_locations()}
        storm_lines = {str(loc) for loc
                       in burst.report.reported_locations()}
        assert base_lines <= storm_lines

        # Health tells the story the operator needs.
        health = burst.health.as_dict()
        assert health["control_mode_changes"] >= 4
        assert health["control_shedding_windows"] >= 1
        assert health["control_sav_max_excess"] > 0

    def test_faultfree_controller_on_stays_nominal(self):
        cfg = soak_config(budget=128)
        result = Laser(cfg).run_workload(get_workload("linear_regression"))
        assert all(w.control_mode == "nominal"
                   for w in result.telemetry.windows)
        assert result.health.as_dict()["control_mode_changes"] == 0
        assert result.driver.records_shed == 0


# ----------------------------------------------------------------------
# Composition with the crash ladder, and the stuck-controller fault
# ----------------------------------------------------------------------

class TestCrashComposition:
    def plan(self):
        # detector.crash occurrence 5 lands in the SHEDDING interval of
        # the linear_regression soak walk (two consultations per poll).
        return (FaultPlan(seed=0)
                .add("load.burst", probability=0.5, max_fires=1200)
                .add("detector.crash", at=(5,)))

    def test_crash_mid_shed_restores_controller_state(self):
        cfg = soak_config(budget=128)
        result = Laser(cfg, faults=self.plan()).run_workload(
            get_workload("linear_regression"))
        health = result.health.as_dict()
        assert health["detector_crashes"] == 1
        assert health["checkpoints_restored"] == 1
        assert health["records_shed"] > 0
        assert health["control_shedding_windows"] >= 1
        # The run survives the compound failure and keeps reporting.
        assert result.report.lines
        modes = [w.control_mode for w in result.telemetry.windows]
        assert modes[0] == "nominal" and "shedding" in modes

    def test_crash_mid_shed_is_byte_deterministic(self):
        cfg = soak_config(budget=128)

        def run():
            return Laser(cfg, faults=self.plan()).run_workload(
                get_workload("linear_regression"))

        first, second = run(), run()
        assert first.cycles == second.cycles
        assert (first.telemetry.tracer.to_jsonl()
                == second.telemetry.tracer.to_jsonl())
        assert (first.telemetry.windows_jsonl()
                == second.telemetry.windows_jsonl())


class TestStuckController:
    def test_stuck_freezes_knobs_but_not_the_budget(self):
        cfg = soak_config(budget=128)
        plan = (FaultPlan(seed=0)
                .add("load.burst", probability=0.5, max_fires=1200)
                .add("control.stuck", at=(1,)))
        stuck = Laser(cfg, faults=plan).run_workload(
            get_workload("linear_regression"))
        health = stuck.health.as_dict()
        assert health["control_stuck_intervals"] == 1
        # The frozen evaluation missed an overloaded window, so the
        # ladder never reached SHEDDING -- but the driver still
        # enforced the budget armed before the freeze.
        modes = [w.control_mode for w in stuck.telemetry.windows]
        assert "shedding" not in modes and "throttled" in modes
        for window in stuck.telemetry.windows:
            if window.admit_budget is not None:
                admitted = window.records_offered - window.records_shed
                assert admitted <= window.admit_budget
        names = [e.name for e in stuck.telemetry.tracer.events()]
        assert "control.stuck" in names


# ----------------------------------------------------------------------
# Determinism and controller-off inertness
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_controller_on_runs_are_byte_identical(self):
        name, probability, max_fires, budget, _ = SOAK_CASES[0]

        def run():
            _, burst = run_soak(name, probability, max_fires, budget)
            return burst

        first, second = run(), run()
        assert first.cycles == second.cycles
        assert (first.telemetry.tracer.to_jsonl()
                == second.telemetry.tracer.to_jsonl())
        assert (first.telemetry.windows_jsonl()
                == second.telemetry.windows_jsonl())
        assert first.health.as_dict() == second.health.as_dict()

    def test_controller_off_serializes_no_control_fields(self):
        cfg = LaserConfig().replace(seed=0, trace_enabled=True)
        result = Laser(cfg).run_workload(get_workload("histogram'"))
        for line in result.telemetry.windows_jsonl().splitlines():
            window = json.loads(line)
            for key in ("control_mode", "sav", "admit_budget",
                        "records_offered", "records_shed"):
                assert key not in window
        names = [e.name for e in result.telemetry.tracer.events()]
        assert not any(n.startswith("control.") for n in names)

    def test_frontier_sweep_is_pool_invariant(self):
        serial = run_frontier_sweep(workloads=["linear_regression"],
                                    profiles=["off", "tight"], workers=1)
        pooled = run_frontier_sweep(workloads=["linear_regression"],
                                    profiles=["off", "tight"], workers=2)
        assert serial.rows == pooled.rows
        tight = serial.cell("linear_regression", "tight")
        assert tight["records_shed"] > 0
        assert tight["peak_mode"] == "shedding"
