"""Small-scale tests of the Figure 10/12/14 harness objects."""

from repro.experiments.overhead import run_overhead, run_time_breakdown
from repro.experiments.sheriff_cmp import run_sheriff_comparison
from repro.workloads.registry import get_workload


class TestOverheadHarness:
    def test_overhead_rows_and_geomean(self):
        result = run_overhead(
            [get_workload("pca"), get_workload("histogram'")], runs=1
        )
        assert len(result.rows) == 2
        pca = result.row_for("pca")
        assert 0.9 < pca.laser_norm < 1.1   # clean benchmark: ~free
        assert pca.vtune_norm > pca.laser_norm
        hist = result.row_for("histogram'")
        assert hist.laser_repaired
        assert result.laser_geomean < result.vtune_geomean
        assert "Figure 10" in result.render()

    def test_time_breakdown_rows(self):
        result = run_time_breakdown(names=("kmeans",))
        [row] = result.rows
        assert row.slowdown > 0.9
        assert 0.0 <= row.detector_pct < 5.0
        assert "Figure 12" in result.render()


class TestSheriffComparisonHarness:
    def test_crash_rows_render_as_x(self):
        result = run_sheriff_comparison(names=["kmeans"])
        row = result.row_for("kmeans")
        assert row.sheriff_detect is None
        assert "x" in row.cells()

    def test_reduced_input_star(self):
        result = run_sheriff_comparison(names=["lu_ncb"])
        row = result.row_for("lu_ncb")
        assert row.reduced_input
        assert row.cells()[0].endswith("*")
        assert row.sheriff_protect is not None  # runs with simlarge

    def test_protect_beats_native_on_false_sharing(self):
        result = run_sheriff_comparison(names=["linear_regression"])
        row = result.row_for("linear_regression")
        assert row.sheriff_protect < 1.0
        assert row.manual is not None and row.manual < 0.5
