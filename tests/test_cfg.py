"""Unit tests for CFG construction and dominance analysis."""

from repro.isa.assembler import Assembler
from repro.isa.cfg import EXIT, build_cfg


def loop_code():
    """r0 iterations of a simple loop, then exit."""
    asm = Assembler()
    asm.mov("r0", 10)          # 0  BB0
    asm.label("loop")
    asm.add("r1", "r1", 1)     # 1  BB1 (loop body)
    asm.sub("r0", "r0", 1)     # 2
    asm.bne("r0", 0, "loop")   # 3
    asm.halt()                 # 4  BB2 (exit)
    return asm.build()


def diamond_code():
    """if/else diamond."""
    asm = Assembler()
    asm.beq("r0", 0, "else")   # 0  BB0
    asm.add("r1", "r1", 1)     # 1  BB1 (then)
    asm.jmp("join")            # 2
    asm.label("else")
    asm.add("r1", "r1", 2)     # 3  BB2 (else)
    asm.label("join")
    asm.halt()                 # 4  BB3 (join)
    return asm.build()


class TestBasicBlocks:
    def test_loop_partitions_into_three_blocks(self):
        cfg = build_cfg(loop_code())
        assert len(cfg.blocks) == 3
        assert [b.start for b in cfg.blocks] == [0, 1, 4]

    def test_loop_edges(self):
        cfg = build_cfg(loop_code())
        assert cfg.blocks[0].successors == [1]
        assert sorted(cfg.blocks[1].successors) == [1, 2]
        assert cfg.blocks[2].successors == []

    def test_predecessors_mirror_successors(self):
        cfg = build_cfg(loop_code())
        assert sorted(cfg.blocks[1].predecessors) == [0, 1]

    def test_diamond_shape(self):
        cfg = build_cfg(diamond_code())
        assert len(cfg.blocks) == 4
        assert sorted(cfg.blocks[0].successors) == [1, 2]
        assert cfg.blocks[1].successors == [3]
        assert cfg.blocks[2].successors == [3]

    def test_block_of_instruction(self):
        cfg = build_cfg(loop_code())
        assert cfg.block_of_instruction(2).index == 1
        assert cfg.block_of_instruction(4).index == 2

    def test_exit_blocks(self):
        cfg = build_cfg(loop_code())
        assert [b.index for b in cfg.exit_blocks()] == [2]


class TestReachability:
    def test_reachable_from_loop_body_includes_exit(self):
        cfg = build_cfg(loop_code())
        assert cfg.reachable_from({1}) == {1, 2}

    def test_reachable_from_entry_covers_everything(self):
        cfg = build_cfg(diamond_code())
        assert cfg.reachable_from({0}) == {0, 1, 2, 3}


def unreachable_code():
    """Dead code after an unconditional HALT (nothing targets it)."""
    asm = Assembler()
    asm.mov("r0", 1)           # 0  BB0
    asm.halt()                 # 1
    asm.add("r1", "r1", 1)     # 2  BB1 (unreachable)
    asm.halt()                 # 3
    return asm.build()


def infinite_loop_code():
    """A spin loop with no exit path, plus dead code after it."""
    asm = Assembler()
    asm.mov("r0", 0)           # 0  BB0
    asm.label("spin")
    asm.add("r0", "r0", 1)     # 1  BB1 (spins forever)
    asm.jmp("spin")            # 2
    asm.halt()                 # 3  BB2 (unreachable)
    return asm.build()


class TestUnreachableBlocks:
    def test_dead_block_is_partitioned_but_unreachable(self):
        cfg = build_cfg(unreachable_code())
        assert len(cfg.blocks) == 2
        assert cfg.blocks[1].start == 2
        assert cfg.reachable_from({0}) == {0}
        assert cfg.blocks[1].predecessors == []

    def test_dead_block_dominators_are_the_universe(self):
        # Unreachable blocks meet over zero predecessors: conventionally
        # dominated by everything (the analysis never constrains them).
        cfg = build_cfg(unreachable_code())
        assert cfg.dominators(1) == frozenset({0, 1})

    def test_dead_block_is_still_an_exit_block(self):
        cfg = build_cfg(unreachable_code())
        assert [b.index for b in cfg.exit_blocks()] == [0, 1]

    def test_reachable_entry_dominance_is_unaffected(self):
        cfg = build_cfg(unreachable_code())
        assert cfg.dominators(0) == frozenset({0})
        assert EXIT in cfg.post_dominators(0)


class TestInfiniteLoops:
    def test_spin_block_loops_only_on_itself(self):
        cfg = build_cfg(infinite_loop_code())
        assert cfg.blocks[1].successors == [1]
        assert sorted(cfg.blocks[1].predecessors) == [0, 1]

    def test_spin_block_cannot_reach_an_exit_block(self):
        cfg = build_cfg(infinite_loop_code())
        reachable = cfg.reachable_from({1})
        assert reachable == {1}
        assert not any(
            not cfg.blocks[b].successors for b in reachable
        )

    def test_spin_post_dominators_are_vacuously_the_universe(self):
        # No path from the spin reaches EXIT, so in the reverse graph
        # the block is unreachable and the meet over zero useful paths
        # leaves the universe: "post-dominated by everything", including
        # EXIT itself.  Callers must pair post-dominance with a forward
        # reachability check (as the repair analysis does).
        cfg = build_cfg(infinite_loop_code())
        postdoms = cfg.post_dominators(1)
        assert EXIT in postdoms
        assert postdoms == frozenset({EXIT, 0, 1, 2})

    def test_divergent_entry_also_has_vacuous_post_dominators(self):
        cfg = build_cfg(infinite_loop_code())
        assert cfg.post_dominators(0) == frozenset({EXIT, 0, 1, 2})

    def test_dead_halt_block_post_dominates_itself_and_exits(self):
        cfg = build_cfg(infinite_loop_code())
        assert cfg.post_dominators(2) == frozenset({EXIT, 2})


class TestDominance:
    def test_entry_dominates_all(self):
        cfg = build_cfg(diamond_code())
        for block in cfg.blocks:
            assert 0 in cfg.dominators(block.index)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = build_cfg(diamond_code())
        doms = cfg.dominators(3)
        assert 1 not in doms and 2 not in doms

    def test_join_post_dominates_arms(self):
        cfg = build_cfg(diamond_code())
        assert 3 in cfg.post_dominators(1)
        assert 3 in cfg.post_dominators(2)

    def test_exit_virtual_node_post_dominates_everything(self):
        cfg = build_cfg(loop_code())
        for block in cfg.blocks:
            assert EXIT in cfg.post_dominators(block.index)

    def test_loop_exit_post_dominates_body(self):
        cfg = build_cfg(loop_code())
        assert 2 in cfg.post_dominators(1)

    def test_common_post_dominators_of_diamond_arms(self):
        cfg = build_cfg(diamond_code())
        common = cfg.common_post_dominators({1, 2})
        assert 3 in common
        assert 0 not in common
