"""Unit tests for the assembler DSL."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import Assembler
from repro.isa.instructions import Opcode
from repro.isa.program import SourceLocation


class TestOperandCoercion:
    def test_string_register_operands(self):
        asm = Assembler()
        inst = asm.mov("r3", "r4")
        assert inst.rd == 3
        assert inst.a.is_reg and inst.a.value == 4

    def test_integer_immediates(self):
        asm = Assembler()
        inst = asm.mov("r0", 123)
        assert not inst.a.is_reg and inst.a.value == 123

    def test_bad_operand_string_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.mov("r0", "bogus")

    def test_destination_must_be_register(self):
        asm = Assembler()
        from repro.isa.instructions import imm

        with pytest.raises(AssemblyError):
            asm.mov(imm(3), 1)


class TestEmission:
    def test_source_location_attaches_to_instructions(self):
        asm = Assembler()
        asm.at("f.c", 7)
        inst = asm.nop()
        assert inst.loc == SourceLocation("f.c", 7)

    def test_region_marks_library_code(self):
        asm = Assembler()
        asm.in_region("lib")
        assert asm.nop().region == "lib"
        asm.in_region("app")
        assert asm.nop().region == "app"

    def test_unknown_region_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().in_region("kernel")

    def test_every_alu_op_emits_correct_opcode(self):
        asm = Assembler()
        cases = [
            (asm.add, Opcode.ADD), (asm.sub, Opcode.SUB),
            (asm.mul, Opcode.MUL), (asm.div, Opcode.DIV),
            (asm.and_, Opcode.AND), (asm.or_, Opcode.OR),
            (asm.xor, Opcode.XOR), (asm.shl, Opcode.SHL),
            (asm.shr, Opcode.SHR),
        ]
        for emit, opcode in cases:
            assert emit("r0", "r1", 2).op is opcode

    def test_memory_ops_carry_offset_and_size(self):
        asm = Assembler()
        load = asm.load("r0", "r1", offset=24, size=4)
        assert load.offset == 24 and load.size == 4
        store = asm.store("r1", 7, offset=8, size=2)
        assert store.offset == 8 and store.size == 2
        addm = asm.addm("r1", 1, offset=16, size=8)
        assert addm.op is Opcode.ADDM and addm.offset == 16

    def test_cmpxchg_operand_layout(self):
        asm = Assembler()
        inst = asm.cmpxchg("r2", "r1", 0, 1, size=8)
        assert inst.rd == 2
        assert inst.b.value == 0 and inst.c.value == 1


class TestLabels:
    def test_branch_targets_resolve_to_indices(self):
        asm = Assembler()
        asm.label("top")
        asm.nop()
        asm.jmp("top")
        code = asm.build()
        assert code.instructions[1].target == 0

    def test_forward_references_resolve(self):
        asm = Assembler()
        asm.beq("r0", 0, "end")
        asm.nop()
        asm.label("end")
        asm.halt()
        code = asm.build()
        assert code.instructions[0].target == 2

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(AssemblyError):
            asm.build()

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        asm.nop()
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_empty_thread_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().build()

    def test_labels_preserved_in_thread_code(self):
        asm = Assembler()
        asm.label("entry")
        asm.halt()
        code = asm.build()
        assert code.labels == {"entry": 0}
