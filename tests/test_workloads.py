"""Tests over the benchmark-analog suite."""

import pytest

from repro.core.detect.report import ContentionClass
from repro.errors import WorkloadError
from repro.sim.machine import Machine
from repro.workloads.base import SheriffSupport
from repro.workloads.characterization import (
    FILLER_COUNTS,
    FILLER_KINDS,
    CharacterizationCase,
    generate_cases,
)
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    suite_workloads,
    workload_names,
)

EXPECTED_NAMES = {
    # Phoenix
    "histogram", "histogram'", "kmeans", "linear_regression",
    "matrix_multiply", "pca", "reverse_index", "string_match", "word_count",
    # Parsec
    "blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
    "fluidanimate", "freqmine", "raytrace.parsec", "streamcluster",
    "swaptions", "vips", "x264",
    # Splash2x
    "barnes", "fft", "fmm", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp",
    "radiosity", "radix", "raytrace.splash2x", "volrend", "water_nsquared",
    "water_spatial",
}

BUGGY = {"bodytrack", "dedup", "histogram'", "kmeans", "linear_regression",
         "lu_ncb", "reverse_index", "streamcluster", "volrend"}


class TestRegistry:
    def test_all_thirty_five_benchmarks_present(self):
        assert set(workload_names()) == EXPECTED_NAMES
        assert len(all_workloads()) == 35

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("nonexistent")

    def test_suites_partition_the_registry(self):
        phoenix = suite_workloads("phoenix")
        parsec = suite_workloads("parsec")
        splash = suite_workloads("splash2x")
        assert len(phoenix) == 9 and len(parsec) == 13 and len(splash) == 13

    def test_nine_benchmarks_carry_bugs(self):
        """Table 1's nine performance bugs."""
        assert {w.name for w in all_workloads() if w.bugs} == BUGGY

    def test_bug_kinds_follow_table_two(self):
        expected = {
            "bodytrack": "TS", "dedup": "TS", "histogram'": "FS",
            "kmeans": "TS", "linear_regression": "FS", "lu_ncb": "FS",
            "reverse_index": "FS", "streamcluster": "FS", "volrend": "TS",
        }
        for name, kind in expected.items():
            assert get_workload(name).bugs[0].kind.value == kind

    def test_sheriff_compatibility_matrix(self):
        """Section 7.3's verdicts: 12 run, 5 incompatible, 18 crash."""
        counts = {support: 0 for support in SheriffSupport}
        for workload in all_workloads():
            counts[workload.sheriff_support] += 1
        assert counts[SheriffSupport.OK] == 12
        assert counts[SheriffSupport.INCOMPATIBLE] == 5
        assert counts[SheriffSupport.CRASH] == 18

    def test_reduced_input_benchmarks(self):
        starred = {w.name for w in all_workloads()
                   if w.sheriff_reduced_input_ok}
        assert starred == {"lu_cb", "lu_ncb", "radix", "water_spatial"}


class TestBuilding:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_workload_builds_and_runs(self, name):
        workload = get_workload(name)
        built = workload.build(scale=0.12)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        result = machine.run(max_cycles=3_000_000)
        assert result.finished
        assert result.instructions > 0

    def test_build_is_deterministic(self):
        a = get_workload("linear_regression").build(seed=1, scale=0.2)
        b = get_workload("linear_regression").build(seed=1, scale=0.2)
        ma = Machine(a.program, seed=1, allocator=a.allocator)
        mb = Machine(b.program, seed=1, allocator=b.allocator)
        a.apply_init(ma)
        b.apply_init(mb)
        assert ma.run().cycles == mb.run().cycles

    def test_heap_offset_shifts_every_allocation(self):
        base = get_workload("histogram'").build(heap_offset=0, scale=0.2)
        shifted = get_workload("histogram'").build(heap_offset=64, scale=0.2)
        for (a1, _s1), (a2, _s2) in zip(base.allocator.live_allocations(),
                                        shifted.allocator.live_allocations()):
            assert a2 == a1 + 64

    def test_manual_fixes_exist_where_the_paper_has_them(self):
        # Figure 11's manual fixes plus the Section 7.4.3 fixes that
        # do not change runtime (streamcluster, word_count, volrend).
        with_fix = {"dedup", "histogram'", "kmeans", "linear_regression",
                    "lu_ncb", "reverse_index", "streamcluster", "volrend",
                    "word_count"}
        for name in sorted(EXPECTED_NAMES):
            fixed = get_workload(name).build_fixed(scale=0.12)
            assert (fixed is not None) == (name in with_fix), name


class TestContentionCharacter:
    def test_linear_regression_contends_and_fix_removes_it(self):
        workload = get_workload("linear_regression")
        built = workload.build(scale=0.5)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        broken = machine.run()
        fixed = workload.build_fixed(scale=0.5)
        machine2 = Machine(fixed.program, seed=0, allocator=fixed.allocator)
        fixed.apply_init(machine2)
        clean = machine2.run()
        assert broken.hitm_count > 50
        assert clean.hitm_count < broken.hitm_count / 20
        assert clean.cycles < broken.cycles

    def test_histogram_default_input_is_contention_free(self):
        built = get_workload("histogram").build(scale=0.5)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        assert machine.run().hitm_count < 20

    def test_histogram_prime_input_contends(self):
        built = get_workload("histogram'").build(scale=0.5)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        assert machine.run().hitm_count > 200

    def test_kmeans_has_no_false_sharing_store_storms(self):
        """kmeans contends through true sharing; its sum objects are
        line-separated (Section 7.4.2)."""
        built = get_workload("kmeans").build(scale=0.3)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        result = machine.run()
        assert result.hitm_count > 100  # plenty of (true) sharing

    def test_lu_cb_is_nearly_contention_free(self):
        built = get_workload("lu_cb").build(scale=0.5)
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        built.apply_init(machine)
        assert machine.run().hitm_rate_per_second < 500

    def test_lu_ncb_layout_is_environment_sensitive(self):
        """The fork's heap shift accidentally calms lu_ncb (30% faster)."""
        workload = get_workload("lu_ncb")
        native = workload.build(heap_offset=0, scale=0.5)
        forked = workload.build(heap_offset=64, scale=0.5)
        m1 = Machine(native.program, seed=0, allocator=native.allocator)
        m2 = Machine(forked.program, seed=0, allocator=forked.allocator)
        r1, r2 = m1.run(), m2.run()
        assert r2.cycles < r1.cycles * 0.9
        assert r2.hitm_count < r1.hitm_count


class TestCharacterizationCases:
    def test_full_grid_is_160_cases(self):
        cases = generate_cases()
        assert len(cases) == len(FILLER_COUNTS) * len(FILLER_KINDS) * 4
        assert len(cases) == 160
        assert len({c.name for c in cases}) == 160

    def test_groups_balanced(self):
        cases = generate_cases()
        for group in ("TSRW", "FSRW", "TSWW", "FSWW"):
            assert sum(1 for c in cases if c.group == group) == 40

    def test_rw_case_generates_load_hitms(self):
        case = CharacterizationCase("TS", "RW", "alu", 2, iters=150)
        built = case.build()
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        result = machine.run(max_cycles=2_000_000)
        assert result.load_hitm_count > 20

    def test_ww_case_generates_store_hitms(self):
        case = CharacterizationCase("FS", "WW", "alu", 2, iters=150)
        built = case.build()
        machine = Machine(built.program, seed=0, allocator=built.allocator)
        result = machine.run(max_cycles=2_000_000)
        assert result.store_hitm_count > 20

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CharacterizationCase("XX", "RW", "alu", 1)
        with pytest.raises(ValueError):
            CharacterizationCase("TS", "XX", "alu", 1)
        with pytest.raises(ValueError):
            CharacterizationCase("TS", "RW", "bogus", 1)
