"""Fleet-resilient detection service (``repro.fleet``).

Four layers of coverage:

* planning: a fleet is a pure function of ``(n, seed)`` — names,
  seeds, arrivals and the per-tenant budget split reproduce exactly;
* the transport: partition/heal mechanics at the unit level, and the
  off-by-default contract — an *inert* transport attached to a
  single run leaves every observable output byte-identical;
* shard supervision: a crashed client restarts with seeded backoff
  and recovers the byte-identical report, an always-crashing client
  is evicted (never retried forever, never an abort), a flooding
  client sheds against its own budget;
* isolation and the pool: faults aimed at one tenant leave every
  bystander's report and health byte-for-byte equal to its fault-free
  single-run baseline, at any worker count, and the
  :class:`FleetHealth` roll-up correlates recurring contention across
  tenants.

The full schedule grid lives in ``repro.experiments.fleet_chaos``
(the CI fleet-chaos job runs it); here one representative cell keeps
the end-to-end path honest in the default suite.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core import Laser, LaserConfig
from repro.experiments.fleet_chaos import (
    FLEET_SCHEDULES,
    run_fleet_chaos_case,
)
from repro.faults import FaultInjector, FaultPlan
from repro.fleet import (
    FleetHealth,
    FleetPool,
    ShardTransport,
    TenantState,
    plan_fleet,
    run_shard,
)
from repro.workloads import get_workload

pytestmark = pytest.mark.fleet


# ----------------------------------------------------------------------
# Planning: seeded tenants, arrivals, budget split
# ----------------------------------------------------------------------


class TestFleetPlanning:
    def test_plan_is_a_pure_function_of_n_and_seed(self):
        first = plan_fleet(n=5, seed=42)
        second = plan_fleet(n=5, seed=42)
        for a, b in zip(first.tenants, second.tenants):
            assert (a.name, a.workload, a.seed, a.arrival_cycle,
                    a.budget_records) == (b.name, b.workload, b.seed,
                                          b.arrival_cycle, b.budget_records)

    def test_different_seeds_plan_different_fleets(self):
        a = plan_fleet(n=4, seed=0)
        b = plan_fleet(n=4, seed=1)
        assert ([t.seed for t in a.tenants] != [t.seed for t in b.tenants])

    def test_fleet_is_mixed_and_arrivals_are_monotone(self):
        spec = plan_fleet(n=6, seed=0)
        assert len({t.workload for t in spec.tenants}) > 1
        arrivals = [t.arrival_cycle for t in spec.tenants]
        assert arrivals == sorted(arrivals) and arrivals[0] > 0

    def test_total_budget_splits_evenly_with_floor(self):
        spec = plan_fleet(n=3, seed=0, total_budget_records=100)
        assert [t.budget_records for t in spec.tenants] == [33, 33, 33]
        assert all(t.config.control_budget_records == 33
                   and t.config.control_enabled
                   for t in spec.tenants)
        floor = plan_fleet(n=4, seed=0, total_budget_records=2)
        assert all(t.budget_records == 1 for t in floor.tenants)

    def test_default_budget_is_the_single_run_default(self):
        base = LaserConfig()
        spec = plan_fleet(n=3, seed=0, base_config=base)
        assert all(t.budget_records == base.control_budget_records
                   for t in spec.tenants)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_fleet(n=0)
        with pytest.raises(ValueError):
            plan_fleet(n=2, workload_pool=())
        with pytest.raises(KeyError):
            plan_fleet(n=2, seed=0).tenant("nope")


# ----------------------------------------------------------------------
# Transport: partition/heal mechanics, off-by-default byte identity
# ----------------------------------------------------------------------


def _transport_ctx(injector):
    from repro.obs.trace import NULL_TRACER

    return SimpleNamespace(
        injector=injector,
        tracer=NULL_TRACER,
        driver=SimpleNamespace(pending_records=7),
        cycle=0,
    )


class TestShardTransport:
    def test_partition_blocks_one_poll_then_heals(self):
        plan = FaultPlan(seed=0).add("shard.partition", at=(1,))
        ctx = _transport_ctx(FaultInjector(plan))
        transport = ShardTransport()
        assert not transport.blocks_poll(ctx)          # poll 0: healthy
        assert transport.blocks_poll(ctx)              # poll 1: down
        assert transport.partitioned
        assert transport.partitions == 1
        assert not transport.blocks_poll(ctx)          # poll 2: healed
        assert not transport.partitioned
        assert transport.heals == 1
        assert transport.records_delayed == 7          # backlog counted once
        assert not transport.blocks_poll(ctx)
        assert transport.records_delayed == 7

    def test_inert_transport_leaves_a_run_byte_identical(self):
        # The off-by-default contract: attaching a transport whose
        # fault site never fires must not move a single observable —
        # the partition consult is occurrence counting only, no RNG.
        cfg = LaserConfig().replace(seed=0, trace_enabled=True)
        workload = get_workload("histogram'")
        plain = Laser(cfg).run_workload(workload)
        transport = ShardTransport()
        attached = Laser(cfg, transport=transport).run_workload(workload)
        assert attached.cycles == plain.cycles
        assert attached.report.render() == plain.report.render()
        assert attached.health.as_dict() == plain.health.as_dict()
        assert (attached.telemetry.tracer.to_jsonl()
                == plain.telemetry.tracer.to_jsonl())
        assert transport.partitions == 0 and transport.records_delayed == 0


# ----------------------------------------------------------------------
# Shard supervision: restart, eviction, flood confinement
# ----------------------------------------------------------------------


def _one_tenant_fleet(fault_plan=None, **plan_kwargs):
    spec = plan_fleet(n=1, seed=0, **plan_kwargs)
    if fault_plan is not None:
        spec.faults[spec.tenants[0].name] = fault_plan
    return spec


class TestShardSupervision:
    def test_crashed_client_restarts_and_recovers_byte_identical(self):
        plan = FaultPlan(seed=0).add("tenant.crash", at=(0,))
        spec = _one_tenant_fleet(plan)
        tenant = spec.tenants[0]
        outcome = run_shard(tenant, spec)
        assert outcome.state == TenantState.DEGRADED
        assert outcome.restarts == 1
        assert outcome.sessions[0]["state"] == "crashed"
        assert outcome.sessions[0]["restart_delay"] >= 1
        assert outcome.wasted_intervals >= 1
        # The restarted session runs fault-free, so recovery is not
        # merely convergent — it is byte-identical.
        baseline = Laser(tenant.config).run_workload(
            get_workload(tenant.workload))
        assert outcome.report_render == baseline.report.render()
        assert outcome.health == baseline.health.as_dict()

    def test_shard_outcome_is_deterministic(self):
        plan = FaultPlan(seed=0).add("tenant.crash", at=(0,))
        spec = _one_tenant_fleet(plan)
        first = run_shard(spec.tenants[0], spec)
        second = run_shard(spec.tenants[0], spec)
        assert first.as_dict() == second.as_dict()

    def test_always_crashing_client_is_evicted(self):
        plan = FaultPlan(seed=0).add("tenant.crash", probability=1.0)
        spec = _one_tenant_fleet(plan)
        outcome = run_shard(spec.tenants[0], spec)
        assert outcome.state == TenantState.EVICTED
        assert outcome.evicted
        assert outcome.report_render is None
        # max_restarts delays granted, then the breaker: one final
        # crashed attempt whose restart_delay is None.
        assert len(outcome.sessions) == spec.max_restarts + 1
        assert outcome.sessions[-1]["restart_delay"] is None
        assert all(s["state"] == "crashed" for s in outcome.sessions)

    def test_flood_sheds_against_the_tenants_own_budget(self):
        plan = FaultPlan(seed=0).add("tenant.flood", at=(0,))
        spec = _one_tenant_fleet(plan)
        outcome = run_shard(spec.tenants[0], spec)
        assert outcome.state == TenantState.DEGRADED
        assert outcome.records_shed > 0
        assert outcome.sessions[0]["flooded"]
        # Shedding costs time-to-detect, never coverage (the burst-soak
        # invariant, now per tenant): every fault-free line survives.
        baseline = Laser(spec.tenants[0].config).run_workload(
            get_workload(spec.tenants[0].workload))
        base_lines = {str(line.location) for line in baseline.report.lines}
        flood_lines = {location for location, _ in outcome.signature}
        assert base_lines <= flood_lines


# ----------------------------------------------------------------------
# Isolation: one tenant's fault moves nothing anywhere else
# ----------------------------------------------------------------------


class TestFleetIsolation:
    def _baselines(self, spec):
        return {
            tenant.name: Laser(tenant.config).run_workload(
                get_workload(tenant.workload))
            for tenant in spec.tenants
        }

    def test_detector_crash_is_confined_to_its_shard(self):
        spec = plan_fleet(n=3, seed=0)
        victim = spec.tenants[0]
        spec.faults[victim.name] = (
            FaultPlan(seed=0).add("detector.crash", at=(8,)))
        result = FleetPool(spec, workers=1).run()
        baselines = self._baselines(spec)
        crashed = result.tenant(victim.name)
        assert crashed.health["detector_crashes"] == 1
        assert crashed.state == TenantState.DEGRADED
        # Blast radius: every bystander is byte-identical to its
        # fault-free single run — report AND the full health dict.
        for outcome in result.outcomes:
            if outcome.tenant == victim.name:
                continue
            baseline = baselines[outcome.tenant]
            assert outcome.state == TenantState.NOMINAL
            assert outcome.report_render == baseline.report.render()
            assert outcome.health == baseline.health.as_dict()

    def test_flood_sheds_in_one_shard_only(self):
        spec = plan_fleet(n=3, seed=0)
        victim = spec.tenants[0]
        spec.faults[victim.name] = (
            FaultPlan(seed=0).add("tenant.flood", at=(0,)))
        result = FleetPool(spec, workers=1).run()
        assert result.tenant(victim.name).records_shed > 0
        for outcome in result.outcomes:
            if outcome.tenant != victim.name:
                assert outcome.records_shed == 0
                assert outcome.state == TenantState.NOMINAL

    def test_fleet_chaos_cell_end_to_end(self):
        # One representative cell of the fleet chaos soak (the full
        # grid is the CI fleet-chaos job): client crash, byte-identical
        # recovery, all bystanders isolated.
        assert "tenant-crash" in FLEET_SCHEDULES
        cell = run_fleet_chaos_case("tenant-crash", seed=0, tenants=3)
        assert cell.victim_ok and cell.isolated and cell.ok
        assert cell.restarts == 1


# ----------------------------------------------------------------------
# Pool determinism and the FleetHealth roll-up
# ----------------------------------------------------------------------


class TestFleetPool:
    def test_results_identical_at_any_worker_count(self):
        spec = plan_fleet(n=2, seed=0)
        spec.faults[spec.tenants[0].name] = (
            FaultPlan(seed=0).add("tenant.crash", at=(0,)))
        serial = FleetPool(spec, workers=1).run()
        pooled = FleetPool(spec, workers=2).run()
        assert ([o.as_dict() for o in serial.outcomes]
                == [o.as_dict() for o in pooled.outcomes])

    def test_roll_up_summarizes_states(self):
        spec = plan_fleet(n=2, seed=0)
        result = FleetPool(spec, workers=1).run()
        assert set(result.health.states().values()) <= set(TenantState.ALL)
        summary = result.health.summary()
        assert "2 tenants" in summary
        assert result.render().count("\n") >= 3
        assert result.as_dict()["tenants"][0]["tenant"] == \
            spec.tenants[0].name


def _fake_outcome(name, signature):
    return SimpleNamespace(tenant=name, signature=frozenset(signature),
                           state=TenantState.NOMINAL, restarts=0,
                           records_shed=0, transport_partitions=0,
                           health=None)


class TestContentionTable:
    def test_recurring_rows_need_two_tenants(self):
        shared = ("lib.c:10", "FS")
        health = FleetHealth([
            _fake_outcome("a", {shared, ("a.c:1", "TS")}),
            _fake_outcome("b", {shared}),
            _fake_outcome("c", {("c.c:3", "FS")}),
        ])
        table = health.contention_table()
        assert table[shared] == ["a", "b"]
        recurring = health.recurring()
        assert set(recurring) == {shared}
        assert health.recurring(min_tenants=1)[("c.c:3", "FS")] == ["c"]

    def test_real_fleet_correlates_shared_diagnoses(self):
        # Two tenants monitoring the same primed workload (distinct
        # seeds) must produce at least one recurring row: the false
        # sharing is in the workload, not the tenant.
        spec = plan_fleet(n=2, seed=0,
                          workload_pool=("histogram'", "histogram'"))
        result = FleetPool(spec, workers=1).run()
        assert result.health.recurring()
