"""Engine bit-identity: the execution plane is observationally invisible.

The acceleration engines (``repro.accel``) change *how* the hot paths
run — struct-of-arrays numpy kernels vs scalar loops for the record
plane, precompiled traces vs the per-instruction interpreter for the
simulator — and must never change *what* they compute.  This module
pins that contract three ways:

* the full golden grid (``tests/golden/run_built_golden.json``) replayed
  under every engine combination, byte-for-byte;
* hypothesis property tests driving the vectorized detection kernels
  against their scalar twins on adversarial random batches;
* a whole-pipeline equivalence check on randomized record streams
  (state_dict byte equality, which covers counters, dict insertion
  order and JSON-serializability of every accumulated value).
"""

import json
import os
import random
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_runbuilt import assert_cell_matches, golden_cells, load_golden  # noqa: E402

from repro.accel import numpy_available, resolve_engine, resolve_sim_engine  # noqa: E402
from repro.core.config import LaserConfig  # noqa: E402
from repro.core.detect.linemodel import CacheLineModel, SharingType  # noqa: E402

np = pytest.importorskip("numpy") if numpy_available() else None

ENGINE_COMBOS = [
    ("python", "interp"),
    ("python", "trace"),
    ("numpy", "interp"),
    ("numpy", "trace"),
]

_SHARING_CODE = {
    SharingType.NONE: 0,
    SharingType.TRUE_SHARING: 1,
    SharingType.FALSE_SHARING: 2,
}


def _needs_numpy(engine):
    if engine == "numpy" and not numpy_available():
        pytest.skip("numpy not installed; numpy-engine cells skipped")


# ----------------------------------------------------------------------
# Golden matrix: every engine combination replays the committed pins
# ----------------------------------------------------------------------

@pytest.mark.services
@pytest.mark.parametrize("engine,sim_engine", ENGINE_COMBOS)
def test_golden_grid_is_engine_invariant(engine, sim_engine, monkeypatch):
    """All golden cells must be byte-identical under every engine."""
    from golden_runbuilt import collect_cell

    _needs_numpy(engine)
    monkeypatch.setenv("LASER_ENGINE", engine)
    monkeypatch.setenv("LASER_SIM_ENGINE", sim_engine)
    assert resolve_engine("auto") == engine
    assert resolve_sim_engine("auto") == sim_engine
    golden = load_golden()
    cells = golden_cells()
    assert len(golden) == len(cells)
    for want in golden:
        got = collect_cell(want["workload"], want["seed"], want["schedule"])
        assert_cell_matches(got, want)


@pytest.mark.parametrize("engine,sim_engine", ENGINE_COMBOS)
def test_run_health_reports_resolved_engines(engine, sim_engine):
    """RunHealth carries engine provenance without entering as_dict."""
    from repro.core.laser import Laser
    from repro.workloads import get_workload

    _needs_numpy(engine)
    cfg = LaserConfig().replace(engine=engine, sim_engine=sim_engine)
    result = Laser(cfg).run_workload(get_workload("histogram'"))
    assert result.health.engine == engine
    assert result.health.sim_engine == sim_engine
    assert "engine" not in result.health.as_dict()
    assert "sim_engine" not in result.health.as_dict()


def test_config_rejects_unknown_engines():
    with pytest.raises(ValueError):
        LaserConfig(engine="fortran")
    with pytest.raises(ValueError):
        LaserConfig(sim_engine="jit")


# ----------------------------------------------------------------------
# Property tests: vectorized kernels vs their scalar twins
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# A handful of cache lines so random batches collide constantly (the
# sequential-per-line chain is the hard part of the vectorization).
_access = st.tuples(
    st.integers(min_value=0, max_value=4 * 64 - 1),   # addr in 4 lines
    st.integers(min_value=1, max_value=64),           # size (may straddle)
    st.booleans(),                                    # is_write
)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(max_examples=200, deadline=None)
@given(st.lists(_access, min_size=0, max_size=64),
       st.lists(_access, min_size=0, max_size=64))
def test_linemodel_batch_matches_scalar(first, second):
    """observe_batch == observe, access by access, across two batches.

    Two consecutive batches exercise the head-chaining path: the second
    batch's group heads must pick up previous-access state the first
    batch stored in the line table.
    """
    scalar = CacheLineModel()
    vector = CacheLineModel()
    for batch in (first, second):
        want = [_SHARING_CODE[scalar.observe(a, s, w)] for a, s, w in batch]
        if batch:
            addr = np.array([a for a, _, _ in batch], np.uint64)
            size = np.array([s for _, s, _ in batch], np.int64)
            write = np.array([w for _, _, w in batch], np.bool_)
            got = vector.observe_batch(addr, size, write, np)
            assert list(got) == want
        assert scalar.state_dict() == vector.state_dict()
    assert json.dumps(scalar.state_dict()) == json.dumps(vector.state_dict())


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_pipeline_batch_matches_scalar_on_random_records(seed):
    """Whole-pipeline equivalence on a random record stream.

    The same records flow through a scalar pipeline one by one and
    through a numpy pipeline as one batch; every accumulated statistic
    (admission counters, per-line aggregation, line-model state, the
    per-location TS/FS scatter) must serialize to identical bytes.
    """
    from repro.core.detect.pipeline import DetectionPipeline
    from repro.pebs.events import StrippedRecord
    from repro.workloads import get_workload

    built = get_workload("histogram'").build(heap_offset=0, seed=0, scale=1.0)
    from repro.sim.machine import Machine

    machine = Machine(built.program, seed=0, allocator=built.allocator)
    rng = random.Random(seed)
    pcs = built.program.all_pcs()
    heap = 0x1000_0000
    records = []
    for i in range(rng.randrange(0, 96)):
        if rng.random() < 0.8:
            pc = rng.choice(pcs)
        else:
            pc = rng.randrange(0, 2**47)   # skid noise, any region
        addr = heap + rng.randrange(0, 1024)
        records.append(StrippedRecord(
            pc=pc, data_addr=addr, core=rng.randrange(4), cycle=i,
            seq=i, weight=rng.choice((1, 1, 1, 2, 4)),
        ))

    scalar = DetectionPipeline(built.program, machine.vmmap, 1000,
                               engine="python")
    vector = DetectionPipeline(built.program, machine.vmmap, 1000,
                               engine="numpy" if numpy_available()
                               else "python")
    for record in records:
        scalar.process([record])
    vector.process(records)
    assert json.dumps(scalar.state_dict(), sort_keys=True) == \
        json.dumps(vector.state_dict(), sort_keys=True)
    assert scalar.stats.records_admitted == vector.stats.records_admitted
    assert scalar.stats.undecodable_pcs == vector.stats.undecodable_pcs


# ----------------------------------------------------------------------
# Batch plumbing: RecordBatch merge/dedup vs the scalar code paths
# ----------------------------------------------------------------------

@pytest.mark.obs
@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_engine_hot_path_floor():
    """The vectorized pipeline must stay >= 5x the scalar loop.

    Measured on a large synthetic batch (the hot path the refactor
    targets — per-poll batches on the small bench workloads sit below
    ``_BATCH_MIN`` and deliberately take the scalar path).  Same-host
    ratio of best-of-N runs, so runner speed cancels out.
    """
    import time

    from repro.core.detect.pipeline import DetectionPipeline
    from repro.pebs.events import StrippedRecord
    from repro.sim.machine import Machine
    from repro.workloads import get_workload

    built = get_workload("histogram'").build(heap_offset=0, seed=0,
                                             scale=1.0)
    machine = Machine(built.program, seed=0, allocator=built.allocator)
    rng = random.Random(0)
    pcs = built.program.all_pcs()
    n = 65536
    records = [
        StrippedRecord(pc=rng.choice(pcs),
                       data_addr=0x1000_0000 + rng.randrange(0, 1024),
                       core=rng.randrange(4), cycle=i, seq=i, weight=1)
        for i in range(n)
    ]

    def best_rate(engine, reps=3):
        best = 0.0
        for _ in range(reps):
            pipeline = DetectionPipeline(built.program, machine.vmmap,
                                         1000, engine=engine)
            t0 = time.perf_counter()
            pipeline.process(records)
            best = max(best, n / (time.perf_counter() - t0))
        return best

    scalar = best_rate("python")
    vector = best_rate("numpy")
    assert vector >= 5.0 * scalar, (
        "numpy engine %.0f recs/s is only %.1fx the scalar %.0f recs/s "
        "(floor: 5x)" % (vector, vector / scalar, scalar)
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 2**40), st.integers(0, 2**40),
              st.integers(0, 3), st.integers(0, 10_000)),
    min_size=0, max_size=80,
))
def test_record_batch_merge_matches_python_sort(rows):
    from repro.pebs.batch import RecordBatch
    from repro.pebs.events import StrippedRecord

    records = [StrippedRecord(pc=pc, data_addr=addr, core=core, cycle=cyc,
                              seq=i, weight=1)
               for i, (pc, addr, core, cyc) in enumerate(rows)]
    want = sorted(records, key=lambda r: (r.cycle, r.core, r.pc))
    got = RecordBatch(list(records), "numpy").sorted_merge().records
    assert [(r.cycle, r.core, r.pc, r.seq) for r in got] == \
        [(r.cycle, r.core, r.pc, r.seq) for r in want]
