"""End-to-end tests of the LASER system (detector + driver + repair)."""

import pytest

from repro.core.config import LaserConfig
from repro.core.detect.report import ContentionClass
from repro.core.laser import Laser
from repro.experiments.runner import run_laser_on, run_native
from repro.isa.program import SourceLocation
from repro.workloads.registry import get_workload


class TestConfig:
    def test_defaults_follow_the_paper(self):
        config = LaserConfig()
        assert config.sample_after_value == 19
        assert config.rate_threshold == 1000.0

    def test_replace_overrides_selected_fields(self):
        config = LaserConfig().replace(sample_after_value=7, seed=3)
        assert config.sample_after_value == 7
        assert config.seed == 3
        assert config.rate_threshold == 1000.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            LaserConfig(sample_after_value=0)
        with pytest.raises(ValueError):
            LaserConfig(rate_threshold=-1)


class TestDetectionEndToEnd:
    def test_linear_regression_bug_lines_detected(self):
        result = run_laser_on(get_workload("linear_regression"))
        reported = result.report.reported_locations()
        assert (SourceLocation("linear_regression.c", 118) in reported
                or SourceLocation("linear_regression.c", 119) in reported)

    def test_linear_regression_type_is_unknown(self):
        """Table 2: low WW address accuracy leaves the type unresolved."""
        result = run_laser_on(get_workload("linear_regression"))
        for line in result.report.lines:
            if line.location.line in (118, 119):
                assert line.contention_class is ContentionClass.UNKNOWN

    def test_dedup_queue_lock_classified_true_sharing(self):
        result = run_laser_on(get_workload("dedup"))
        line = result.report.line_for(SourceLocation("queue.c", 88))
        assert line is not None
        assert line.contention_class is ContentionClass.TRUE_SHARING

    def test_kmeans_modified_flag_classified_true_sharing(self):
        result = run_laser_on(get_workload("kmeans"))
        line = result.report.line_for(SourceLocation("kmeans.c", 193))
        assert line is not None
        assert line.contention_class is ContentionClass.TRUE_SHARING

    def test_clean_benchmark_reports_nothing(self):
        result = run_laser_on(get_workload("pca"))
        assert result.report.lines == []

    def test_histogram_input_sensitivity(self):
        """LASER adapts: nothing on the default input, FS on the other."""
        default = run_laser_on(get_workload("histogram"))
        assert default.report.lines == []
        prime = run_laser_on(get_workload("histogram'"))
        hot = prime.report.line_for(SourceLocation("histogram.c", 77))
        assert hot is not None
        assert hot.contention_class is ContentionClass.FALSE_SHARING


class TestRepairEndToEnd:
    def test_histogram_prime_repaired_online_and_faster(self):
        workload = get_workload("histogram'")
        native = run_native(workload)
        result = run_laser_on(workload)
        assert result.repaired
        assert result.cycles < native.cycles

    def test_linear_regression_repaired_online(self):
        result = run_laser_on(get_workload("linear_regression"))
        assert result.repaired

    def test_kmeans_true_sharing_not_repaired(self):
        """Repairing true sharing would be fruitless (Section 7.1)."""
        result = run_laser_on(get_workload("kmeans"))
        assert not result.repaired

    def test_lu_ncb_repair_rejected_as_unprofitable(self):
        result = run_laser_on(get_workload("lu_ncb"))
        assert not result.repaired
        assert result.repair_plan is not None
        assert "stores/flush" in result.repair_plan.rejected_reason

    def test_reverse_index_minor_bug_not_worth_repair(self):
        result = run_laser_on(get_workload("reverse_index"))
        assert not result.repaired

    def test_repair_preserves_results(self):
        """The repaired histogram' computes the same bin counts."""
        workload = get_workload("histogram'")
        built = workload.build(heap_offset=64, seed=0)
        bins_addr = [a for a, s in built.allocator.live_allocations()
                     if built.allocator.label_of(a) == "histogram_bins"][0]
        laser_result = Laser(LaserConfig()).run_workload(workload)
        assert laser_result.repaired
        # Native reference on the identical layout.
        from repro.experiments.runner import run_built_native

        reference = workload.build(heap_offset=64, seed=0)
        native_machine_result = run_built_native(reference, seed=0)
        native_memory = None  # compare via machine objects below
        import repro.sim.machine as machine_mod

        native_machine = machine_mod.Machine(
            reference.program, seed=0, allocator=reference.allocator
        )
        reference.apply_init(native_machine)
        native_machine.run()
        assert (laser_result.machine.memory.read_bytes(bins_addr, 256)
                == native_machine.memory.read_bytes(bins_addr, 256))


class TestSystemAccounting:
    def test_driver_and_detector_cycles_tracked(self):
        result = run_laser_on(get_workload("kmeans"))
        assert result.detector_cycles > 0
        assert result.application_cpu_cycles > 0
        # Both components are tiny relative to the app (Figure 12).
        assert result.detector_cycles < 0.05 * result.application_cpu_cycles

    def test_detection_disabled_means_no_records(self):
        config = LaserConfig(detection_enabled=False, repair_enabled=False)
        result = run_laser_on(get_workload("histogram'"), config=config)
        assert result.pipeline.stats.records_seen == 0
        assert not result.repaired

    def test_repair_disabled_still_detects(self):
        config = LaserConfig(repair_enabled=False)
        result = run_laser_on(get_workload("histogram'"), config=config)
        assert not result.repaired
        assert result.report.lines

    def test_sav_controls_record_volume(self):
        dense = run_laser_on(get_workload("kmeans"),
                             config=LaserConfig(sample_after_value=3,
                                                repair_enabled=False))
        sparse = run_laser_on(get_workload("kmeans"),
                              config=LaserConfig(sample_after_value=31,
                                                 repair_enabled=False))
        assert dense.pipeline.stats.records_seen > (
            3 * sparse.pipeline.stats.records_seen
        )
