"""Tests for the HTM model and the software store buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HtmAbort
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.core.repair.ssb import SoftwareStoreBuffer
from repro.sim.machine import Machine


def make_machine():
    asm = Assembler()
    asm.halt()
    return Machine(Program("htm_host", [asm.build()]), jitter=False)


class TestHtm:
    def test_commit_applies_all_writes(self):
        machine = make_machine()
        writes = [(0x10000000 + 8 * i, i + 1, 8) for i in range(4)]
        machine.htm.execute_atomically(0, writes)
        for addr, value, size in writes:
            assert machine.memory.read(addr, size) == value
        assert machine.htm.commits == 1

    def test_capacity_abort_rolls_back(self):
        machine = make_machine()
        writes = [(0x10000000 + 64 * i, 7, 8) for i in range(9)]  # 9 lines
        with pytest.raises(HtmAbort):
            machine.htm.execute_atomically(0, writes)
        assert machine.htm.aborts == 1
        for addr, _v, _s in writes:
            assert machine.memory.read(addr, 8) == 0

    def test_straddling_write_counts_both_lines(self):
        machine = make_machine()
        writes = [(0x10000000 + 128 * i + 60, 7, 8) for i in range(5)]
        with pytest.raises(HtmAbort):
            # 5 straddlers over disjoint line pairs -> 10 lines > 8 ways.
            machine.htm.execute_atomically(0, writes)

    def test_split_for_capacity_preserves_order(self):
        writes = [(0x1000 + 64 * i, i, 8) for i in range(20)]
        chunks = machine_chunks = (
            make_machine().htm.split_for_capacity(writes, 8)
        )
        flattened = [w for chunk in chunks for w in chunk]
        assert flattened == writes
        for chunk in chunks:
            lines = {addr // 64 for addr, _v, _s in chunk}
            assert len(lines) <= 8


class TestSsbBasics:
    def _ssb(self):
        machine = make_machine()
        return machine, SoftwareStoreBuffer(machine, core_id=0)

    def test_put_then_contains(self):
        _m, ssb = self._ssb()
        ssb.put(0x10000000, 0xAABB, 2)
        assert ssb.contains(0x10000000, 2)
        assert not ssb.contains(0x10000000, 4)  # only 2 bytes buffered
        assert ssb.may_alias(0x10000001, 4)
        assert not ssb.may_alias(0x10000002, 2)

    def test_fully_buffered_load_costs_no_memory_access(self):
        machine, ssb = self._ssb()
        ssb.put(0x10000000, 0x1234, 8)
        core = machine.cores[0]
        inst = machine.program.threads[0].instructions[0]
        value, latency = ssb.load_through(core, inst, 0x10000000, 8)
        assert value == 0x1234
        assert latency == 0
        assert ssb.stats.full_hits == 1

    def test_partial_load_overlays_buffered_bytes(self):
        machine, ssb = self._ssb()
        machine.memory.write(0x10000000, 0x1111111111111111, 8)
        ssb.put(0x10000000, 0xFF, 1)  # buffer only the low byte
        core = machine.cores[0]
        inst = machine.program.threads[0].instructions[0]
        value, latency = ssb.load_through(core, inst, 0x10000000, 8)
        assert value == 0x11111111111111FF
        assert latency > 0
        assert ssb.stats.partial_hits == 1

    def test_unbuffered_load_reads_memory(self):
        machine, ssb = self._ssb()
        machine.memory.write(0x10000040, 77, 8)
        core = machine.cores[0]
        inst = machine.program.threads[0].instructions[0]
        value, _lat = ssb.load_through(core, inst, 0x10000040, 8)
        assert value == 77
        assert ssb.stats.misses == 1

    def test_last_write_wins_per_byte(self):
        machine, ssb = self._ssb()
        ssb.put(0x10000000, 0x1111111111111111, 8)
        ssb.put(0x10000004, 0xAA, 1)
        ssb.flush(0)
        assert machine.memory.read(0x10000000, 8) == 0x111111AA11111111

    def test_preflush_threshold_follows_l1_associativity(self):
        """Preflush fires AT the associativity bound so the flush still
        fits in one hardware transaction."""
        _m, ssb = self._ssb()
        for i in range(7):
            ssb.put(0x10000000 + 64 * i, 1, 8)
        assert not ssb.should_preflush()
        ssb.put(0x10000000 + 64 * 7, 1, 8)
        assert ssb.should_preflush()

    def test_preflush_sized_flush_never_aborts(self):
        machine, ssb = self._ssb()
        for i in range(8):
            ssb.put(0x10000000 + 64 * i, 1, 8)
        assert ssb.should_preflush()
        ssb.flush(0)
        assert ssb.stats.htm_aborts == 0

    def test_flush_clears_and_returns_latency(self):
        machine, ssb = self._ssb()
        ssb.put(0x10000000, 5, 8)
        latency = ssb.flush(0)
        assert latency >= machine.latency.ssb_flush_base
        assert ssb.empty()
        assert ssb.flush(0) == 0  # empty flush is free

    def test_oversized_flush_falls_back_to_chunks(self):
        machine, ssb = self._ssb()
        # Preflush checks are the caller's job; force 12 lines directly.
        for i in range(12):
            ssb.put(0x10000000 + 64 * i, i + 1, 8)
        ssb.flush(0)
        assert ssb.stats.htm_aborts == 1
        for i in range(12):
            assert machine.memory.read(0x10000000 + 64 * i, 8) == i + 1

    def test_coalescing_merges_contiguous_bytes(self):
        _m, ssb = self._ssb()
        ssb.put(0x10000000, 0x11, 1)
        ssb.put(0x10000001, 0x22, 1)
        ssb.put(0x10000002, 0x33, 1)
        ssb.put(0x10000010, 0x44, 1)
        writes = ssb._coalesced_writes()
        assert (0x10000000, 0x332211, 3) in writes
        assert (0x10000010, 0x44, 1) in writes

    @given(st.lists(
        st.tuples(st.integers(0, 96), st.integers(0, (1 << 64) - 1),
                  st.sampled_from([1, 2, 4, 8])),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=40, deadline=None)
    def test_flush_equals_direct_store_sequence(self, stores):
        """SSB buffering + one flush == executing the stores directly."""
        base = 0x10000000
        machine, ssb = self._ssb()
        reference = make_machine()
        for offset, value, size in stores:
            ssb.put(base + offset, value, size)
            reference.memory.write(base + offset, value, size)
        ssb.flush(0)
        assert (machine.memory.read_bytes(base, 112)
                == reference.memory.read_bytes(base, 112))
