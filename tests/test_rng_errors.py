"""Tests for RNG streams and the error hierarchy."""

import pytest

from repro import errors
from repro.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "pebs") == derive_seed(42, "pebs")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_bases_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_fits_in_63_bits(self):
        assert 0 <= derive_seed(2 ** 70, "x") < 2 ** 63


class TestRngStreams:
    def test_streams_are_independent(self):
        family = RngStreams(7)
        a = family.stream("a")
        _ = a.random()  # consuming one stream...
        b_after = RngStreams(7).stream("b").random()
        assert family.stream("b").random() == b_after  # ...leaves others alone

    def test_stream_identity_cached(self):
        family = RngStreams(1)
        assert family.stream("x") is family.stream("x")

    def test_fork_produces_distinct_family(self):
        family = RngStreams(3)
        child = family.fork("child")
        assert child.seed != family.seed
        assert child.stream("a").random() != family.stream("a").random()


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in ("AssemblyError", "SimulationError", "AllocationError",
                     "RepairError", "WorkloadError", "SheriffCrash",
                     "SheriffIncompatible", "DeadlockError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_htm_abort_carries_reason(self):
        abort = errors.HtmAbort("capacity: 9 lines")
        assert abort.reason.startswith("capacity")

    def test_allocation_error_is_simulation_error(self):
        assert issubclass(errors.AllocationError, errors.SimulationError)
