"""Tests for the memory, memory-map and allocator substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.sim.allocator import CHUNK_HEADER_SIZE, Allocator
from repro.sim.memory import PAGE_SIZE, Memory
from repro.sim.vmmap import (
    APP_CODE_BASE,
    HEAP_BASE,
    KERNEL_BASE,
    Region,
    RegionKind,
    STACK_TOP,
    VirtualMemoryMap,
    default_memory_map,
)


class TestMemory:
    def test_uninitialized_reads_zero(self):
        assert Memory().read(0x1234, 8) == 0

    def test_write_read_roundtrip_all_sizes(self):
        mem = Memory()
        for size in (1, 2, 4, 8):
            value = (1 << (8 * size)) - 3
            mem.write(0x1000, value, size)
            assert mem.read(0x1000, size) == value

    def test_little_endian_layout(self):
        mem = Memory()
        mem.write(0x2000, 0x0102030405060708, 8)
        assert mem.read(0x2000, 1) == 0x08
        assert mem.read(0x2007, 1) == 0x01

    def test_page_straddling_access(self):
        mem = Memory()
        addr = PAGE_SIZE - 3
        mem.write(addr, 0xAABBCCDDEEFF1122, 8)
        assert mem.read(addr, 8) == 0xAABBCCDDEEFF1122
        assert mem.touched_pages() == 2

    def test_value_truncated_to_size(self):
        mem = Memory()
        mem.write(0x3000, 0x1FF, 1)
        assert mem.read(0x3000, 1) == 0xFF

    def test_bytes_helpers(self):
        mem = Memory()
        mem.write_bytes(0x4000, b"hello")
        assert mem.read_bytes(0x4000, 5) == b"hello"

    @given(st.lists(st.tuples(st.integers(0, 1 << 40),
                              st.integers(0, (1 << 64) - 1),
                              st.sampled_from([1, 2, 4, 8])),
                    min_size=1, max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, writes):
        """Memory behaves like a per-byte dict under arbitrary writes."""
        mem = Memory()
        model = {}
        for addr, value, size in writes:
            mem.write(addr, value, size)
            for i in range(size):
                model[addr + i] = (value >> (8 * i)) & 0xFF
        for addr, byte in list(model.items())[:50]:
            assert mem.read(addr, 1) == byte


class TestVirtualMemoryMap:
    def test_overlapping_regions_rejected(self):
        vmmap = VirtualMemoryMap([Region("a", 0, 100, RegionKind.HEAP)])
        with pytest.raises(ValueError):
            vmmap.add_region(Region("b", 50, 150, RegionKind.HEAP))

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region("empty", 10, 10, RegionKind.HEAP)

    def test_default_map_classifies_code_and_data(self):
        vmmap = default_memory_map(2, APP_CODE_BASE + 0x100)
        assert vmmap.classify(APP_CODE_BASE) is RegionKind.APP_CODE
        assert vmmap.classify(HEAP_BASE + 8) is RegionKind.HEAP
        assert vmmap.classify(KERNEL_BASE + 8) is RegionKind.KERNEL
        assert vmmap.classify(0x123) is None

    def test_default_map_has_one_stack_per_thread(self):
        vmmap = default_memory_map(3, APP_CODE_BASE + 0x100)
        for tid in range(3):
            region = vmmap.stack_region_of_thread(tid)
            assert region is not None
            assert vmmap.is_stack_address(region.start + 64)

    def test_app_and_lib_code_pass_pc_filter(self):
        vmmap = default_memory_map(1, APP_CODE_BASE + 0x100)
        assert vmmap.is_application_or_library_code(APP_CODE_BASE + 4)
        assert not vmmap.is_application_or_library_code(KERNEL_BASE + 4)

    def test_app_region_has_minimum_text_span(self):
        vmmap = default_memory_map(1, APP_CODE_BASE + 0x10)
        region = vmmap.find(APP_CODE_BASE)
        assert region.end - region.start >= 0x20000

    def test_stack_addresses_are_per_thread_disjoint(self):
        vmmap = default_memory_map(4, APP_CODE_BASE + 0x100)
        regions = [vmmap.stack_region_of_thread(t) for t in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert (regions[i].end <= regions[j].start
                        or regions[j].end <= regions[i].start)


class TestAllocator:
    def test_default_alignment_is_sixteen(self):
        allocator = Allocator()
        addr = allocator.malloc(100)
        assert addr % 16 == 0

    def test_sixteen_byte_alignment_rarely_line_aligned(self):
        """The lreg situation: a 64-byte struct isn't line-aligned."""
        allocator = Allocator()
        addr = allocator.malloc(256)
        assert addr % 64 == CHUNK_HEADER_SIZE

    def test_explicit_line_alignment(self):
        allocator = Allocator()
        allocator.malloc(24)  # misalign the bump pointer
        addr = allocator.malloc(128, align=64)
        assert addr % 64 == 0

    def test_allocations_never_overlap(self):
        allocator = Allocator()
        spans = []
        for size in (3, 64, 100, 1, 8192, 17):
            addr = allocator.malloc(size)
            spans.append((addr, addr + size))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_no_overlap_property(self, sizes):
        allocator = Allocator()
        spans = sorted(
            (allocator.malloc(size), size) for size in sizes
        )
        for (a1, s1), (a2, _s2) in zip(spans, spans[1:]):
            assert a1 + s1 <= a2

    def test_base_offset_shifts_layout(self):
        plain = Allocator().malloc(64)
        shifted = Allocator(base_offset=64).malloc(64)
        assert shifted == plain + 64

    def test_bad_base_offset_rejected(self):
        with pytest.raises(AllocationError):
            Allocator(base_offset=5000)

    def test_bad_sizes_and_alignments_rejected(self):
        allocator = Allocator()
        with pytest.raises(AllocationError):
            allocator.malloc(0)
        with pytest.raises(AllocationError):
            allocator.malloc(8, align=3)

    def test_heap_exhaustion(self):
        allocator = Allocator(heap_size=4096)
        with pytest.raises(AllocationError):
            allocator.malloc(1 << 20)

    def test_free_and_double_free(self):
        allocator = Allocator()
        addr = allocator.malloc(32)
        allocator.free(addr)
        with pytest.raises(AllocationError):
            allocator.free(addr)

    def test_labels_resolve_interior_addresses(self):
        allocator = Allocator()
        addr = allocator.malloc(128, label="lreg_args")
        assert allocator.label_of(addr + 100) == "lreg_args"
        assert allocator.label_of(addr + 1000) == ""

    def test_bytes_in_use_tracks_live_allocations(self):
        allocator = Allocator()
        a = allocator.malloc(100)
        allocator.malloc(50)
        assert allocator.bytes_in_use() == 150
        allocator.free(a)
        assert allocator.bytes_in_use() == 50
