"""Tests for the VTune and Sheriff baselines."""

import pytest

from repro.baselines.sheriff import SheriffMachine, SheriffMode, run_sheriff
from repro.baselines.vtune import VTuneProfiler
from repro.errors import SheriffCrash, SheriffIncompatible
from repro.experiments.runner import run_native
from repro.isa.assembler import Assembler
from repro.isa.program import Program, SourceLocation
from repro.workloads.registry import get_workload


class TestVTune:
    def test_profiles_and_reports_contention_lines(self):
        result = VTuneProfiler().run_workload(get_workload("histogram'"))
        assert any(loc.file == "histogram.c"
                   for loc in result.reported_locations())

    def test_interrupt_per_event_slows_contended_code(self):
        workload = get_workload("histogram'")
        native = run_native(workload)
        result = VTuneProfiler().run_workload(workload)
        assert result.cycles > native.cycles * 1.05
        assert result.total_hitms > 0

    def test_memory_sampling_slows_clean_dense_code(self):
        """string_match has no contention yet suffers under VTune."""
        workload = get_workload("string_match")
        native = run_native(workload)
        result = VTuneProfiler().run_workload(workload)
        assert result.cycles > native.cycles * 1.3

    def test_misses_the_dedup_queue_bug(self):
        """Table 1's single VTune false negative."""
        result = VTuneProfiler().run_workload(get_workload("dedup"))
        bug_lines = set(get_workload("dedup").bug_locations())
        assert not (set(result.reported_locations()) & bug_lines)

    def test_finds_the_kmeans_bug_lines(self):
        result = VTuneProfiler().run_workload(get_workload("kmeans"))
        bug_lines = set(get_workload("kmeans").bug_locations())
        assert set(result.reported_locations()) & bug_lines


class TestSheriffCompatibility:
    def test_incompatible_workloads_raise(self):
        with pytest.raises(SheriffIncompatible):
            run_sheriff(get_workload("dedup"), SheriffMode.DETECT)

    def test_crashing_workloads_raise(self):
        with pytest.raises(SheriffCrash):
            run_sheriff(get_workload("kmeans"), SheriffMode.DETECT,
                        allow_reduced_input=False)

    def test_reduced_input_rescues_starred_benchmarks(self):
        result = run_sheriff(get_workload("lu_ncb"), SheriffMode.PROTECT,
                             scale=0.5)
        assert result.reduced_input

    def test_plain_flag_handoff_livelocks(self):
        """A racy flag hand-off never becomes visible across Sheriff's
        private address spaces: the emergent runtime error."""
        producer = Assembler("p")
        producer.mov("r1", 0x10000040)
        producer.store("r1", 1, size=8)   # never followed by a sync
        producer.label("spin_forever")
        producer.load("r2", 0x10000048, size=8)
        producer.beq("r2", 0, "spin_forever")
        producer.halt()
        consumer = Assembler("c")
        consumer.label("wait")
        consumer.load("r2", 0x10000040, size=8)
        consumer.beq("r2", 0, "wait")
        consumer.mov("r1", 0x10000048)
        consumer.store("r1", 1, size=8)
        consumer.halt()
        program = Program("handoff", [producer.build(), consumer.build()])
        machine = SheriffMachine(program, SheriffMode.PROTECT, seed=0)
        result = machine.run(until_cycle=200_000, max_cycles=300_000)
        assert not result.finished  # both spin forever


class TestSheriffExecution:
    def test_protect_eliminates_false_sharing(self):
        """Sheriff fixes linear_regression even though Sheriff-Detect
        detects nothing in it (Section 7.3)."""
        workload = get_workload("linear_regression")
        native = run_native(workload)
        result = run_sheriff(workload, SheriffMode.PROTECT)
        assert result.cycles < native.cycles

    def test_sync_heavy_code_collapses(self):
        """water_nsquared: per-sync diff-and-merge dominates."""
        workload = get_workload("water_nsquared")
        native = run_native(workload)
        result = run_sheriff(workload, SheriffMode.PROTECT)
        assert result.cycles > native.cycles * 2
        assert result.machine.sync_commits > 100

    def test_detect_costs_more_than_protect(self):
        workload = get_workload("histogram'")
        protect = run_sheriff(workload, SheriffMode.PROTECT)
        detect = run_sheriff(workload, SheriffMode.DETECT)
        assert detect.cycles >= protect.cycles
        assert detect.machine.write_faults > 0

    def test_atomics_commit_overlays(self):
        """A cmpxchg publishes the thread's buffered writes."""
        writer = Assembler("w")
        writer.mov("r1", 0x10000040)
        writer.store("r1", 42, size=8)
        writer.mov("r2", 0x10000080)
        writer.cmpxchg("r3", "r2", 0, 1, size=8)  # sync: commits overlay
        writer.halt()
        program = Program("commit", [writer.build()])
        machine = SheriffMachine(program, SheriffMode.PROTECT, seed=0)
        machine.run()
        assert machine.memory.read(0x10000040, 8) == 42
        assert machine.sync_commits >= 1

    def test_detect_reports_allocation_sites_not_lines(self):
        result = run_sheriff(get_workload("reverse_index"),
                             SheriffMode.DETECT)
        assert result.reported_sites
        assert all(site.startswith("malloc-wrapper:")
                   for site in result.reported_sites)

    def test_sheriff_detect_misses_linear_regression(self):
        result = run_sheriff(get_workload("linear_regression"),
                             SheriffMode.DETECT)
        assert result.reported_sites == []
