"""Tests for the MESI directory and HITM event generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import LineState, line_base, line_of
from repro.sim.coherence import CoherenceDirectory
from repro.sim.timing import LatencyModel


def make_directory():
    return CoherenceDirectory(LatencyModel())


class TestLineHelpers:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_line_base(self):
        assert line_base(100) == 64


class TestStateTransitions:
    def test_cold_read_fills_exclusive(self):
        d = make_directory()
        result = d.access(0, 0x100, 8, is_write=False)
        assert not result.hitm
        assert result.latency == d.latency.memory
        assert d.state_of(0, 0x100) is LineState.EXCLUSIVE

    def test_cold_write_fills_modified(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        assert d.state_of(0, 0x100) is LineState.MODIFIED

    def test_exclusive_write_upgrades_silently(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=False)
        result = d.access(0, 0x100, 8, is_write=True)
        assert result.latency == d.latency.l1_hit
        assert d.state_of(0, 0x100) is LineState.MODIFIED

    def test_read_of_remote_modified_is_a_hitm(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        result = d.access(1, 0x100, 8, is_write=False)
        assert result.hitm and result.hitm_remote_core == 0
        assert d.load_hitm_count == 1
        # Both end Shared (writeback + share).
        assert d.state_of(0, 0x100) is LineState.SHARED
        assert d.state_of(1, 0x100) is LineState.SHARED

    def test_write_to_remote_modified_is_a_store_hitm(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        result = d.access(1, 0x100, 8, is_write=True)
        assert result.hitm
        assert d.store_hitm_count == 1
        assert d.state_of(0, 0x100) is LineState.INVALID
        assert d.state_of(1, 0x100) is LineState.MODIFIED

    def test_shared_write_is_an_upgrade_not_a_hitm(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=False)
        d.now = 1000  # past any pending line transition
        d.access(1, 0x100, 8, is_write=False)
        d.now = 2000
        result = d.access(0, 0x100, 8, is_write=True)
        assert not result.hitm
        assert result.latency == d.latency.upgrade
        assert d.state_of(1, 0x100) is LineState.INVALID

    def test_read_read_sharing_is_free_of_contention(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=False)
        for core in (1, 2, 3):
            result = d.access(core, 0x100, 8, is_write=False)
            assert not result.hitm
        assert d.hitm_count == 0

    def test_same_word_different_line_no_interference(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        result = d.access(1, 0x140, 8, is_write=True)
        assert not result.hitm

    def test_false_sharing_within_one_line_hitms(self):
        """Distinct words, same line: the contention of Section 2."""
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        result = d.access(1, 0x108, 8, is_write=True)
        assert result.hitm

    def test_straddling_access_touches_two_lines(self):
        d = make_directory()
        result = d.access(0, 0x13C, 8, is_write=True)  # crosses 0x140
        assert result.lines_touched == 2
        assert d.state_of(0, 0x13C) is LineState.MODIFIED
        assert d.state_of(0, 0x140) is LineState.MODIFIED


class TestSerialization:
    def test_contended_transitions_queue_behind_each_other(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        d.now = 0
        first = d.access(1, 0x100, 8, is_write=True)
        # Still at cycle 0: the second transition must wait for the first.
        second = d.access(2, 0x100, 8, is_write=True)
        assert second.latency > first.latency
        assert d.serialization_stall_cycles > 0

    def test_l1_hits_never_serialize(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        d.now = 0
        for _ in range(3):
            result = d.access(0, 0x100, 8, is_write=True)
            assert result.latency == d.latency.l1_hit


class TestInvariants:
    def test_clean_directory_has_no_violations(self):
        d = make_directory()
        d.access(0, 0x100, 8, is_write=True)
        d.access(1, 0x100, 8, is_write=False)
        d.access(2, 0x140, 8, is_write=False)
        assert d.check_invariants() == []

    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 8), st.booleans()),
        min_size=1, max_size=200,
    ))
    @settings(max_examples=60, deadline=None)
    def test_mesi_invariants_hold_under_random_traffic(self, accesses):
        """At most one M holder; M excludes S/E; at most one E."""
        d = make_directory()
        for core, slot, is_write in accesses:
            d.now += 7
            d.access(core, 0x1000 + slot * 24, 8, is_write)
            assert d.check_invariants() == []

    @given(st.lists(
        st.tuples(st.integers(0, 3), st.booleans()),
        min_size=2, max_size=100,
    ))
    @settings(max_examples=40, deadline=None)
    def test_hitm_fires_iff_remote_modified(self, accesses):
        d = make_directory()
        addr = 0x2000
        for core, is_write in accesses:
            d.now += 11
            holders = d.holders_of_line(addr // 64)
            remote_m = any(
                c != core and s is LineState.MODIFIED
                for c, s in holders.items()
            )
            result = d.access(core, addr, 8, is_write)
            assert result.hitm == remote_m
