"""Unit tests for the ISA layer: instructions, operands, programs."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import Assembler
from repro.isa.instructions import (
    Instruction,
    Opcode,
    Operand,
    imm,
    reg,
)
from repro.isa.program import PC_STRIDE, Program, SourceLocation


class TestOperands:
    def test_register_operand_resolves_register_file(self):
        regs = [0] * 16
        regs[3] = 42
        assert reg(3).value_of(regs) == 42

    def test_immediate_operand_ignores_register_file(self):
        assert imm(99).value_of([0] * 16) == 99

    def test_register_index_bounds(self):
        with pytest.raises(ValueError):
            reg(16)
        with pytest.raises(ValueError):
            reg(-1)

    def test_operand_equality_and_hash(self):
        assert reg(2) == reg(2)
        assert reg(2) != imm(2)
        assert hash(reg(2)) == hash(reg(2))

    def test_repr(self):
        assert repr(reg(5)) == "r5"
        assert repr(imm(7)) == "$7"


class TestInstructionProperties:
    def test_load_flags(self):
        inst = Instruction(Opcode.LOAD, rd=0, a=reg(1))
        assert inst.is_load and not inst.is_store and inst.is_memory_op

    def test_store_flags(self):
        inst = Instruction(Opcode.STORE, a=reg(1), b=imm(0))
        assert inst.is_store and not inst.is_load

    def test_addm_is_both_load_and_store(self):
        inst = Instruction(Opcode.ADDM, a=reg(1), b=imm(1))
        assert inst.is_load and inst.is_store

    def test_cmpxchg_is_rmw_and_fence(self):
        inst = Instruction(Opcode.CMPXCHG, rd=0, a=reg(1), b=imm(0), c=imm(1))
        assert inst.is_load and inst.is_store and inst.is_fence

    def test_addm_is_not_a_fence(self):
        inst = Instruction(Opcode.ADDM, a=reg(1), b=imm(1))
        assert not inst.is_fence

    def test_branch_flags(self):
        inst = Instruction(Opcode.BEQ, a=reg(0), b=imm(0), target=3)
        assert inst.is_branch
        assert not Instruction(Opcode.ADD, rd=0, a=reg(0), b=reg(1)).is_branch

    def test_copy_preserves_fields_and_pc(self):
        inst = Instruction(Opcode.STORE, a=reg(1), b=imm(9), offset=8, size=4,
                           loc=SourceLocation("f.c", 3))
        inst.pc = 0x400010
        clone = inst.copy()
        assert clone.op is Opcode.STORE
        assert clone.b.value == 9
        assert clone.offset == 8 and clone.size == 4
        assert clone.pc == 0x400010
        assert clone.loc == inst.loc
        assert clone is not inst


class TestProgram:
    def _two_thread_program(self):
        threads = []
        for tid in range(2):
            asm = Assembler("t%d" % tid)
            asm.at("app.c", 10 + tid)
            asm.mov("r0", 1)
            asm.halt()
            threads.append(asm.build())
        return Program("demo", threads)

    def test_pcs_are_assigned_contiguously(self):
        program = self._two_thread_program()
        pcs = program.all_pcs()
        assert pcs[0] == program.code_base
        assert pcs[-1] == program.code_base + (len(pcs) - 1) * PC_STRIDE
        assert program.code_end == pcs[-1] + PC_STRIDE

    def test_instruction_lookup_by_pc(self):
        program = self._two_thread_program()
        inst = program.instruction_at(program.code_base)
        assert inst is not None and inst.op is Opcode.MOV
        assert program.instruction_at(program.code_base + 2) is None

    def test_location_mapping_round_trips(self):
        program = self._two_thread_program()
        loc = SourceLocation("app.c", 10)
        pcs = program.pcs_for_location(loc)
        assert pcs
        assert all(program.location_of_pc(pc) == loc for pc in pcs)

    def test_locations_enumerates_debug_info(self):
        program = self._two_thread_program()
        assert SourceLocation("app.c", 10) in program.locations()
        assert SourceLocation("app.c", 11) in program.locations()

    def test_with_thread_code_reassigns_pcs(self):
        program = self._two_thread_program()
        asm = Assembler("replacement")
        asm.nop()
        asm.nop()
        asm.halt()
        replaced = program.with_thread_code(0, asm.build())
        assert replaced.num_threads == 2
        assert len(replaced.threads[0]) == 3
        # New program has its own dense PC map.
        assert len(replaced.all_pcs()) == 3 + len(program.threads[1].instructions)

    def test_with_thread_code_rejects_bad_index(self):
        program = self._two_thread_program()
        with pytest.raises(AssemblyError):
            program.with_thread_code(5, program.threads[0])

    def test_source_location_ordering_and_repr(self):
        a = SourceLocation("a.c", 2)
        b = SourceLocation("a.c", 10)
        assert a < b
        assert repr(a) == "a.c:2"
