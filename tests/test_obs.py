"""Observability: tracing, telemetry, profiler, spans, bench writers.

The load-bearing guarantees under test:

* determinism — same seed + config produce byte-identical trace JSONL
  and metrics snapshots;
* isolation — tracing observes, it never perturbs: simulated cycles are
  identical with tracing on, off, or ring-starved; the host-time
  profiler and span tracing likewise leave every simulated output
  bit-identical when enabled and byte-identical to baseline when off;
* boundedness — the ring sheds oldest events and accounts for them
  (and the drop count surfaces in ``RunHealth`` without degrading it);
* near-zero disabled cost — the per-site guard budget (tracer *and*
  profiler) stays under 2% of run wall-clock.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core.config import LaserConfig
from repro.core.laser import Laser
from repro.obs import (
    NULL_TRACER,
    Counter,
    EventTracer,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    WindowStats,
)
from repro.obs.trace import chrome_lane
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.obs

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def traced_run(name="linear_regression", seed=0, **overrides):
    overrides.setdefault("trace_enabled", True)
    config = LaserConfig(seed=seed, **overrides)
    return Laser(config).run_workload(get_workload(name))


@pytest.fixture(scope="module")
def traced():
    """One traced linear_regression run shared by the read-only tests."""
    return traced_run()


def make_window(index=0, start=0, end=50_000, **overrides):
    fields = dict(
        index=index, start_cycle=start, end_cycle=end, stalled=False,
        repair_state="idle", hitm_events=10, hitm_rate=200.0,
        records_seen=5, records_admitted=5, records_dropped=0,
        detector_cycles=100, driver_cycles=50, ssb_flushes=0,
        ssb_htm_aborts=0,
    )
    fields.update(overrides)
    return WindowStats(**fields)


class TestTracerUnit:
    def test_ring_sheds_oldest_and_accounts_for_drops(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit("x.e", cycle=i)
        assert len(tracer) == 4
        assert tracer.events_emitted == 10
        assert tracer.events_dropped == 6
        assert [e.cycle for e in tracer.events()] == [6, 7, 8, 9]

    def test_null_tracer_never_emits_even_if_reenabled(self):
        NULL_TRACER.enabled = True
        try:
            NULL_TRACER.emit("x.e", cycle=1)
        finally:
            NULL_TRACER.enabled = False
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events_emitted == 0

    def test_jsonl_is_canonical(self):
        tracer = EventTracer()
        tracer.emit("b.second", cycle=2, zeta=1, alpha=2)
        lines = tracer.to_jsonl().splitlines()
        assert lines == [
            '{"args":{"alpha":2,"zeta":1},"cycle":2,"name":"b.second","ph":"i"}'
        ]

    def test_chrome_lanes_split_by_component(self):
        assert chrome_lane("pebs.sample", {"core": 3}) == (1, 3)
        assert chrome_lane("machine.slice", None) == (1, 99)
        assert chrome_lane("driver.drain", {"core": 1}) == (2, 1)
        assert chrome_lane("repair.attach", None) == (3, 0)
        assert chrome_lane("laser.run_begin", None) == (3, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestMetricsUnit:
    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(3)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.snapshot() == 3

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        for value in (5, 50, 500, 7):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"le_10": 2, "le_100": 1}
        assert snap["overflow"] == 1
        assert snap["min"] == 5.0 and snap["max"] == 500.0
        assert hist.mean == pytest.approx(140.5)

    def test_snapshot_is_byte_stable(self):
        registry = MetricsRegistry()
        registry.gauge("z").set(1.5)
        registry.counter("a").inc()
        first = MetricsRegistry.snapshot_json(registry.snapshot())
        second = MetricsRegistry.snapshot_json(registry.snapshot())
        assert first == second == '{"a":1,"z":1.5}'


class TestTelemetryUnit:
    def test_series_and_totals(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, 0, 50_000, hitm_events=4))
        telemetry.record_window(
            make_window(1, 50_000, 100_000, hitm_events=6)
        )
        assert telemetry.series("hitm_events") == [4, 6]
        assert telemetry.totals()["hitm_events"] == 10
        with pytest.raises(KeyError):
            telemetry.series("no_such_field")

    def test_window_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            make_window(bogus=1)

    def test_timeline_marks_states(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, repair_state="attached"))
        telemetry.record_window(
            make_window(1, 50_000, 100_000, stalled=True)
        )
        timeline = telemetry.render_timeline()
        lines = timeline.splitlines()
        assert len(lines) == 3  # header + two windows
        assert lines[1].rstrip().endswith("R")
        assert lines[2].rstrip().endswith("S")

    def test_empty_timeline_renders_placeholder(self):
        assert "no detection windows" in RunTelemetry().render_timeline()

    def test_drop_rate_is_a_per_second_rate(self):
        window = make_window(records_dropped=50)  # 50 drops / 50k cycles
        from repro._constants import CYCLES_PER_SECOND

        assert window.drop_rate == pytest.approx(
            50 * CYCLES_PER_SECOND / 50_000)
        degenerate = make_window(end=0, records_dropped=50)
        assert degenerate.drop_rate == 0.0

    def test_timeline_plots_drop_rate_column(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, records_dropped=100))
        timeline = telemetry.render_timeline()
        assert "drop/s" in timeline.splitlines()[0]
        from repro._constants import CYCLES_PER_SECOND

        expected = "%.0f" % (100 * CYCLES_PER_SECOND / 50_000)
        assert expected in timeline.splitlines()[1]

    def test_timeline_golden_snapshot(self):
        """Exact ASCII pin for the timeline layout.

        Synthetic windows, so every column is deterministic; any
        formatting change must update this snapshot consciously.
        """
        telemetry = RunTelemetry()
        telemetry.record_window(
            make_window(0, hitm_events=4, records_seen=7,
                        records_admitted=7, repair_state="attached")
        )
        telemetry.record_window(
            make_window(1, 50_000, 100_000, stalled=True,
                        records_dropped=100)
        )
        assert telemetry.render_timeline() == "\n".join([
            "win  kcycles         hitm/s  rate (peak 200/s)            "
            "     recs  drop  drop/s st",
            "  0  0-50               200  ###############################"
            "#     7     0       0  R",
            "  1  50-100             200  ###############################"
            "#     5   100    2000  S",
        ])

    def test_timeline_adds_mode_column_only_for_control_runs(self):
        plain = RunTelemetry()
        plain.record_window(make_window(0))
        assert "mode" not in plain.render_timeline().splitlines()[0]

        controlled = RunTelemetry()
        controlled.record_window(
            make_window(0, control_mode="shedding", records_offered=400,
                        records_shed=144, sav=76, admit_budget=128)
        )
        lines = controlled.render_timeline().splitlines()
        assert "mode" in lines[0] and "shed" in lines[0]
        # Shedding renders as the "S" mode glyph plus the shed count.
        assert lines[1].split()[-2:] == ["S", "144"]


class TestRunDeterminism:
    def test_same_seed_same_bytes(self, traced):
        again = traced_run()
        assert (traced.telemetry.tracer.to_jsonl()
                == again.telemetry.tracer.to_jsonl())
        assert (traced.telemetry.windows_jsonl()
                == again.telemetry.windows_jsonl())
        assert (traced.telemetry.snapshots_jsonl()
                == again.telemetry.snapshots_jsonl())

    def test_different_seed_different_trace(self, traced):
        other = traced_run(seed=1)
        assert (traced.telemetry.tracer.to_jsonl()
                != other.telemetry.tracer.to_jsonl())

    def test_tracing_never_perturbs_the_simulation(self, traced):
        untraced = traced_run(trace_enabled=False)
        assert untraced.cycles == traced.cycles
        assert (untraced.pmu.total_hitm_count
                == traced.pmu.total_hitm_count)
        assert untraced.repaired == traced.repaired
        assert len(untraced.telemetry.tracer) == 0
        assert untraced.telemetry.tracer.events_emitted == 0

    def test_starved_ring_still_identical_cycles(self, traced):
        starved = traced_run(trace_capacity=8)
        assert starved.cycles == traced.cycles
        assert len(starved.telemetry.tracer) == 8
        assert starved.telemetry.tracer.events_dropped > 0
        assert (starved.telemetry.tracer.events_emitted
                == traced.telemetry.tracer.events_emitted)


class TestRunTraceContent:
    def test_lifecycle_events_present(self, traced):
        tracer = traced.telemetry.tracer
        names = {e.name for e in tracer.events()}
        assert "laser.run_begin" in names
        assert "laser.run_end" in names
        assert "pebs.sample" in names
        assert "driver.drain" in names
        assert "detect.window_roll" in names
        assert "detect.line_over_threshold" in names
        # linear_regression's false sharing gets repaired (Figure 11).
        assert "repair.plan" in names
        assert "repair.attach" in names
        # the attached SSB flushes through HTM transactions
        assert "htm.begin" in names
        assert "htm.commit" in names

    def test_cycles_are_monotonic_where_ordered(self, traced):
        tracer = traced.telemetry.tracer
        rolls = [e.cycle for e in tracer.events_named("detect.window_roll")]
        assert rolls and rolls == sorted(rolls)
        # drains are stamped with each core's last buffered record, so
        # they are monotonic per core (not across cores within a poll)
        per_core = {}
        for event in tracer.events_named("driver.drain"):
            per_core.setdefault(event.args["core"], []).append(event.cycle)
        assert per_core
        for cycles in per_core.values():
            assert cycles == sorted(cycles)

    def test_windows_are_contiguous(self, traced):
        windows = traced.telemetry.windows
        assert windows
        for previous, window in zip(windows, windows[1:]):
            assert window.start_cycle == previous.end_cycle
            assert window.index == previous.index + 1
        for window in windows:
            expected = (window.hitm_events * 1_000_000
                        / window.duration_cycles)
            assert window.hitm_rate == pytest.approx(expected)

    def test_repair_state_transitions_to_attached(self, traced):
        states = traced.telemetry.series("repair_state")
        assert states[0] == "idle"
        assert "attached" in states

    def test_snapshots_track_windows(self, traced):
        telemetry = traced.telemetry
        assert len(telemetry.snapshots) == telemetry.window_count
        last = telemetry.snapshots[-1]
        assert last["hitm.events"] == telemetry.totals()["hitm_events"]
        assert last["records.seen"] == telemetry.totals()["records_seen"]

    def test_chrome_trace_structure(self, traced):
        doc = traced.telemetry.to_chrome_trace()
        events = doc["traceEvents"]
        assert events
        json.dumps(doc)  # must serialize
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata
                 if e["name"] == "process_name"}
        assert "LASER kernel driver" in names
        assert "LASER detector + repair" in names
        counters = [e for e in events if e["ph"] == "C"]
        assert {c["name"] for c in counters} >= {"hitm_rate", "record_flow"}
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e.get("s") == "t" for e in instants)


class TestRunHealthSurfacing:
    def test_info_fields_do_not_degrade(self, traced):
        health = traced.health
        assert "undecodable_pcs" in health._FIELDS
        assert "records_pending_at_exit" in health._FIELDS
        assert health.undecodable_pcs >= 0
        assert health.records_pending_at_exit >= 0
        assert not health.degraded

    def test_info_fields_show_in_summary(self):
        from repro.core.laser import RunHealth

        health = RunHealth()
        health.undecodable_pcs = 3
        assert not health.degraded
        assert "undecodable_pcs=3" in health.summary()

    def test_trace_drops_surface_without_degrading(self, traced):
        assert "trace_events_dropped" in traced.health._FIELDS
        assert traced.health.trace_events_dropped == 0

        starved = traced_run(trace_capacity=8)
        dropped = starved.telemetry.tracer.events_dropped
        assert dropped > 0
        # The health hook samples the counter during exit teardown;
        # run-end events emitted after it may still drop, so the field
        # trails the final tracer count by at most those tail events.
        assert 0 < starved.health.trace_events_dropped <= dropped
        assert dropped - starved.health.trace_events_dropped <= 2
        assert not starved.health.degraded


class TestDisabledOverhead:
    def test_guard_budget_under_two_percent(self, traced):
        """Disabled tracing costs one attribute load + branch per site.

        Bound it: (guard executions, measured as events emitted by the
        traced twin) x (measured per-guard cost) must stay under 2% of
        the untraced run's wall-clock.
        """
        emitted = traced.telemetry.tracer.events_emitted
        assert emitted > 0

        tracer = NULL_TRACER
        iterations = 200_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            if tracer.enabled:  # pragma: no cover - never taken
                raise AssertionError
        per_guard = (time.perf_counter() - t0) / iterations

        t0 = time.perf_counter()
        traced_run(trace_enabled=False)
        run_wall = time.perf_counter() - t0

        assert emitted * per_guard < 0.02 * run_wall

    def test_profiler_guard_budget_under_two_percent(self, traced):
        """The disabled profiler obeys the same per-site budget.

        Profiler sites are far sparser than tracer sites — four slice
        fan-outs per poll plus one per sim slice and driver drain — so
        bound the guard count by the (much larger) event count and hold
        it to the same 2% budget.
        """
        from repro.obs import NULL_PROFILER

        guard_sites = traced.telemetry.tracer.events_emitted
        profiler = NULL_PROFILER
        iterations = 200_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            if profiler.enabled:  # pragma: no cover - never taken
                raise AssertionError
        per_guard = (time.perf_counter() - t0) / iterations

        t0 = time.perf_counter()
        traced_run(trace_enabled=False)
        run_wall = time.perf_counter() - t0

        assert guard_sites * per_guard < 0.02 * run_wall


# ----------------------------------------------------------------------
# Host-time profiler
# ----------------------------------------------------------------------

class _FakeNsClock:
    """Scripted perf_counter_ns stand-in: deterministic profiler tests."""

    def __init__(self):
        self.now = 0

    def advance(self, ns):
        self.now += ns

    def __call__(self):
        return self.now


@pytest.fixture
def fake_clock(monkeypatch):
    import repro.obs.profile as profile_mod

    clock = _FakeNsClock()
    monkeypatch.setattr(profile_mod.time, "perf_counter_ns", clock)
    return clock


class TestHostProfilerUnit:
    def test_self_time_excludes_children(self, fake_clock):
        from repro.obs import HostProfiler

        profiler = HostProfiler()
        profiler.begin("poll")
        fake_clock.advance(100)
        profiler.begin("detection")
        fake_clock.advance(200)
        profiler.end()
        fake_clock.advance(700)
        profiler.end()
        assert profiler.self_ns(("poll",)) == 800
        assert profiler.self_ns(("poll", "detection")) == 200
        assert profiler.total_ns == 1000
        assert profiler.calls(("poll", "detection")) == 1

    def test_same_leaf_under_different_parents_is_two_paths(self, fake_clock):
        from repro.obs import HostProfiler

        profiler = HostProfiler()
        for parent, cost in (("poll", 100), ("exit", 300)):
            profiler.begin(parent)
            profiler.begin("pebs.drain")
            fake_clock.advance(cost)
            profiler.end()
            profiler.end()
        assert profiler.self_ns(("poll", "pebs.drain")) == 100
        assert profiler.self_ns(("exit", "pebs.drain")) == 300
        # paths(): parents before children, siblings by subtree cost
        assert profiler.paths() == [
            ("exit",), ("exit", "pebs.drain"),
            ("poll",), ("poll", "pebs.drain"),
        ]

    def test_aggregate_shares_merge_leaves_and_keep_stable_keys(
            self, fake_clock):
        from repro.obs import HostProfiler
        from repro.obs.profile import KERNEL_CATEGORIES

        profiler = HostProfiler()
        for parent in ("poll", "exit"):
            profiler.begin(parent)
            profiler.begin("detection")
            fake_clock.advance(250)
            profiler.end()
            profiler.end()
        shares = profiler.aggregate_shares()
        assert set(KERNEL_CATEGORIES) <= set(shares)
        assert shares["detection"] == pytest.approx(1.0)
        assert shares["repair"] == 0.0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unmatched_end_raises(self):
        from repro.obs import HostProfiler

        with pytest.raises(RuntimeError):
            HostProfiler().end()

    def test_null_profiler_never_records_even_if_reenabled(self):
        from repro.obs import NULL_PROFILER

        NULL_PROFILER.enabled = True
        try:
            NULL_PROFILER.begin("poll")
            NULL_PROFILER.end()  # would raise on a recording profiler
        finally:
            NULL_PROFILER.enabled = False
        assert NULL_PROFILER.total_ns == 0

    def test_merge_accumulates_paths_and_calls(self, fake_clock):
        from repro.obs import HostProfiler

        first, second = HostProfiler(), HostProfiler()
        for profiler in (first, second):
            profiler.begin("sim.core")
            fake_clock.advance(500)
            profiler.end()
        first.merge(second)
        assert first.self_ns(("sim.core",)) == 1000
        assert first.calls(("sim.core",)) == 2

    def test_as_dict_and_render_are_deterministic(self, fake_clock):
        from repro.obs import HostProfiler, render_profile
        from repro.obs.profile import PROFILE_SCHEMA

        profiler = HostProfiler()
        profiler.begin("poll")
        fake_clock.advance(100_000_000)
        profiler.begin("detection")
        fake_clock.advance(200_000_000)
        profiler.end()
        fake_clock.advance(700_000_000)
        profiler.end()

        doc = profiler.as_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["total_ms"] == 1000.0
        assert doc["rows"] == [
            {"path": "poll", "depth": 0, "calls": 1,
             "self_ms": 800.0, "share": 0.8},
            {"path": "poll/detection", "depth": 1, "calls": 1,
             "self_ms": 200.0, "share": 0.2},
        ]

        lines = render_profile(profiler).splitlines()
        assert lines[1].split() == ["poll", "1", "800.000", "80.0%",
                                    "#" * 28]
        assert lines[2].split() == ["detection", "1", "200.000", "20.0%",
                                    "#" * 7]
        assert lines[2].startswith("  detection")  # depth indentation
        assert lines[-1] == "profiled host time: 1000.000 ms"

    def test_render_empty_profiler_is_a_hint_not_a_crash(self):
        from repro.obs import HostProfiler, render_profile

        assert "profiling off" in render_profile(HostProfiler())


class TestProfiledRunIsolation:
    def test_profile_off_by_default_and_result_field_none(self, traced):
        assert traced.profile is None

    def test_profiling_never_perturbs_the_simulation(self, traced):
        profiled = traced_run(profile_enabled=True)
        assert profiled.cycles == traced.cycles
        assert profiled.health.as_dict() == traced.health.as_dict()
        assert (profiled.telemetry.tracer.to_jsonl()
                == traced.telemetry.tracer.to_jsonl())

    def test_profiled_run_attributes_the_kernel(self):
        profiled = traced_run(profile_enabled=True)
        profile = profiled.profile
        assert profile is not None and profile.total_ns > 0
        shares = profile.aggregate_shares()
        # The simulator core dominates every current workload.
        assert shares["sim.core"] > 0.5
        assert sum(shares.values()) == pytest.approx(1.0)
        labels = {path[0] for path in profile.paths()}
        assert {"sim.core", "poll", "exit"} <= labels


# ----------------------------------------------------------------------
# Causal span tracing
# ----------------------------------------------------------------------

def synthetic_repair_events():
    """A minimal drain → window → threshold → repair lifecycle."""
    tracer = EventTracer()
    tracer.emit("driver.drain", 10, core=0, drained=3, dropped=0)
    tracer.emit("detect.batch", 12, records=3, seq_lo=1, seq_hi=3)
    tracer.emit("detect.window_roll", 20, records_seen=3,
                records_admitted=3, window_cycles=20)
    tracer.emit("detect.line_over_threshold", 999, location="line#1",
                hitm_rate=2000.0)
    tracer.emit("repair.trigger", 25, lines=("line#1",), pcs=2)
    tracer.emit("repair.plan", 26, kind="realign")
    tracer.emit("repair.verify", 27, verdict="confirmed")
    tracer.emit("repair.attach", 28)
    tracer.emit("repair.watchdog", 60, verdict="ok")
    tracer.emit("repair.detach", 90)
    return list(tracer.events())


class TestSpanBuilderUnit:
    def test_chain_links_records_to_repair(self):
        from repro.obs.spans import build_spans

        trace = build_spans(synthetic_repair_events())
        assert len(trace.windows) == 1
        assert len(trace.chains) == 1
        assert not trace.orphans
        window = trace.windows[0]
        assert [c.name for c in window.children] == [
            "driver.drain", "detect.batch", "detect.line_over_threshold",
        ]
        chain = trace.chains[0]
        assert chain.outcome == "detached"
        assert chain.windows == [window]
        assert chain.records_behind() == {
            "records": 3, "seq_lo": 1, "seq_hi": 3, "windows": 1,
        }
        assert [s.name for s in chain.stages] == [
            "repair.trigger", "repair.plan", "repair.verify",
            "repair.attach", "repair.watchdog", "repair.detach",
        ]

    def test_backoff_closes_the_chain(self):
        from repro.obs.spans import build_spans

        tracer = EventTracer()
        tracer.emit("detect.window_roll", 20, records_seen=1,
                    records_admitted=1)
        tracer.emit("detect.line_over_threshold", 999, location="line#1")
        tracer.emit("repair.trigger", 25, lines=("line#1",))
        tracer.emit("repair.backoff", 26, reason="verify_failed",
                    intervals=4)
        trace = build_spans(tracer.events())
        assert trace.chains[0].outcome == "backed off (verify_failed)"

    def test_unparented_spans_become_orphans(self):
        from repro.obs.spans import build_spans

        tracer = EventTracer()
        # Threshold before any window, watchdog with nothing attached,
        # and a post-roll drain nothing consumed.
        tracer.emit("detect.line_over_threshold", 999, location="line#9")
        tracer.emit("repair.watchdog", 50, verdict="ok")
        tracer.emit("driver.drain", 60, core=1, drained=2, dropped=0)
        trace = build_spans(tracer.events())
        assert not trace.windows and not trace.chains
        assert [o.name for o in trace.orphans] == [
            "detect.line_over_threshold", "repair.watchdog", "driver.drain",
        ]

    def test_non_causal_events_pass_through_untouched(self):
        from repro.obs.spans import build_spans

        tracer = EventTracer()
        tracer.emit("laser.run_begin", 0)
        tracer.emit("pebs.sample", 5, core=0)
        trace = build_spans(tracer.events())
        assert not trace.windows and not trace.chains and not trace.orphans

    def test_render_names_the_flow_and_provenance(self):
        from repro.obs.spans import build_spans

        text = build_spans(synthetic_repair_events()).render()
        assert "causal spans: 1 windows, 1 repair chains, 0 orphans" in text
        assert "repair chain #0 (flow 1): detached" in text
        assert "caused by: 1 window(s), 3 record(s), seq 1..3" in text
        assert "batch records=3 seq 1..3" in text

    def test_render_elides_windows_past_the_cap(self):
        from repro.obs.spans import build_spans

        tracer = EventTracer()
        for index in range(5):
            tracer.emit("detect.window_roll", 20 * (index + 1),
                        records_seen=0, records_admitted=0)
        text = build_spans(tracer.events()).render(max_windows=2)
        assert "(… 3 more windows)" in text
        assert text.count("window @") == 2

    def test_chrome_export_threads_one_flow_per_chain(self):
        from repro.obs.spans import build_spans

        doc = build_spans(synthetic_repair_events()).to_chrome_trace()
        events = doc["traceEvents"]
        json.dumps(doc)  # must serialize
        slices = [e for e in events if e["ph"] == "X"]
        # window + its 3 children + 6 lifecycle stages
        assert len(slices) == 10
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        assert [f["ph"] for f in flows] == (
            ["s"] + ["t"] * (len(flows) - 2) + ["f"])
        assert {f["id"] for f in flows} == {1}
        assert flows[-1]["bp"] == "e"
        # Threshold slices are re-anchored to the window's end cycle,
        # never their native report-duration timestamp.
        threshold = next(e for e in slices
                         if e["name"] == "detect.line_over_threshold")
        assert threshold["ts"] == 20


class TestSpanTracedRun:
    def test_span_tracing_off_means_no_batch_events(self, traced):
        names = {e.name for e in traced.telemetry.tracer.events()}
        assert "detect.batch" not in names

    def test_span_tracing_never_perturbs_the_simulation(self, traced):
        spanned = traced_run(trace_spans=True)
        assert spanned.cycles == traced.cycles
        assert spanned.health.as_dict() == traced.health.as_dict()
        names = {e.name for e in spanned.telemetry.tracer.events()}
        assert "detect.batch" in names

    def test_real_run_builds_a_resolved_chain(self):
        from repro.obs.spans import build_spans

        spanned = traced_run(trace_spans=True)
        trace = build_spans(spanned.telemetry.tracer.events())
        assert trace.windows and trace.chains
        chain = trace.chains[0]
        assert chain.outcome in ("attached", "detached")
        behind = chain.records_behind()
        assert behind["windows"] >= 1 and behind["records"] > 0
        assert behind["seq_lo"] is not None
        assert behind["seq_lo"] <= behind["seq_hi"]


class TestGoldenPinsWithObservatoryOn:
    """ISSUE acceptance: the observatory must be free when off *and*
    invisible to the simulation when on — a profiled run matches the
    committed golden pins byte-for-byte (the profiler only reads the
    host clock), and the default config leaves span tracing off so the
    trace SHA-256 pins hold too (the services golden suite covers
    that side)."""

    def test_profiled_run_matches_committed_golden(self):
        from golden_runbuilt import _sha256, assert_cell_matches, load_golden

        want = next(
            g for g in load_golden()
            if (g["workload"], g["seed"], g["schedule"])
            == ("linear_regression", 0, None)
        )
        result = traced_run(profile_enabled=True)
        got = {
            "workload": "linear_regression",
            "seed": 0,
            "schedule": None,
            "cycles": result.cycles,
            "report": result.report.render().splitlines(),
            "health": result.health.as_dict(),
            "trace_events": len(result.telemetry.tracer),
            "trace_sha256": _sha256(result.telemetry.tracer.to_jsonl()),
            "windows": result.telemetry.window_count,
            "windows_sha256": _sha256(result.telemetry.windows_jsonl()),
        }
        assert_cell_matches(got, want)
        assert result.profile is not None  # it really was profiling


# ----------------------------------------------------------------------
# BENCH_core speed scoreboard
# ----------------------------------------------------------------------

class TestBenchCore:
    def test_collect_schema_and_anchors(self):
        from repro.obs.bench_core import BENCH_CORE_SCHEMA, collect_bench_core
        from repro.obs.profile import KERNEL_CATEGORIES

        bench = collect_bench_core(["histogram'"], runs=3, workers=1)
        assert bench["schema"] == BENCH_CORE_SCHEMA
        entry = bench["workloads"]["histogram'"]
        for field in ("native_cycles_per_sec", "sim_cycles_per_sec",
                      "records_per_sec"):
            assert entry[field] > 0
        assert set(KERNEL_CATEGORIES) <= set(entry["self_time_shares"])
        assert entry["records_seen"] > 0
        assert bench["geomean_sim_cycles_per_sec"] > 0

        again = collect_bench_core(["histogram'"], runs=3, workers=1)
        twin = again["workloads"]["histogram'"]
        # Rates are host-dependent; the anchors must not move.
        assert twin["laser_cycles"] == entry["laser_cycles"]
        assert twin["records_seen"] == entry["records_seen"]

    def test_rate_gate_only_fails_on_regressions(self):
        from repro.obs.bench_core import max_rate_drift_pct

        base = {"workloads": {"w": {
            "native_cycles_per_sec": 100.0, "sim_cycles_per_sec": 100.0,
            "records_per_sec": 50.0,
        }}}
        faster = {"workloads": {"w": {
            "native_cycles_per_sec": 900.0, "sim_cycles_per_sec": 1000.0,
            "records_per_sec": 500.0,
        }}}
        slower = {"workloads": {"w": {
            "native_cycles_per_sec": 100.0, "sim_cycles_per_sec": 40.0,
            "records_per_sec": 50.0,
        }}}
        assert max_rate_drift_pct(base, faster) == 0.0
        assert max_rate_drift_pct(base, slower) == pytest.approx(60.0)
        # Zero-rate baselines (histogram has no records) are skipped.
        base["workloads"]["w"]["records_per_sec"] = 0.0
        assert max_rate_drift_pct(base, slower) == pytest.approx(60.0)

    def test_diff_marks_anchor_moves_as_behavior_changes(self):
        from repro.obs.bench_core import diff_bench_core

        base = {"workloads": {"w": {
            "native_cycles_per_sec": 100.0, "sim_cycles_per_sec": 100.0,
            "records_per_sec": 50.0, "laser_cycles": 1000.0,
            "records_seen": 40,
        }}}
        same = json.loads(json.dumps(base))
        assert "no rate drift" in diff_bench_core(base, same)
        moved = json.loads(json.dumps(base))
        moved["workloads"]["w"]["records_seen"] = 41
        assert "BEHAVIOR CHANGE" in diff_bench_core(base, moved)

    def test_committed_scoreboard_is_fresh(self):
        """The committed BENCH_core.json parses, matches the current
        schema, and covers the bench suite (≥5 registry workloads)."""
        from repro.obs.bench import DEFAULT_BENCH_WORKLOADS
        from repro.obs.bench_core import BENCH_CORE_SCHEMA

        path = os.path.join(_SRC, os.pardir, "BENCH_core.json")
        with open(path) as fh:
            committed = json.load(fh)
        assert committed["schema"] == BENCH_CORE_SCHEMA
        assert set(committed["workloads"]) == set(DEFAULT_BENCH_WORKLOADS)
        assert len(committed["workloads"]) >= 5
        for entry in committed["workloads"].values():
            assert set(entry["self_time_shares"]) >= {
                "sim.core", "pebs.drain", "detection", "repair"}


class TestCliAndBench:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_SRC, env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, *argv], capture_output=True, text=True,
            env=env, timeout=300,
        )

    def test_obs_cli_smoke(self):
        proc = self._run("-m", "repro.obs", "--smoke")
        assert proc.returncode == 0, proc.stderr
        assert "smoke ok" in proc.stdout
        assert "phase timeline" in proc.stdout
        assert "cycle breakdown" in proc.stdout
        assert "ring: " in proc.stdout  # emitted/retained/dropped line

    def test_obs_cli_unknown_workload_exits_nonzero(self):
        proc = self._run("-m", "repro.obs", "no_such_workload")
        assert proc.returncode != 0

    def test_obs_cli_profile_subcommand(self, tmp_path):
        out = tmp_path / "profile.json"
        proc = self._run("-m", "repro.obs", "profile", "histogram",
                         "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "host-time profile: histogram" in proc.stdout
        assert "profiled host time:" in proc.stdout
        assert "top self-time:" in proc.stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == "laser-host-profile/v1"
        assert doc["rows"] and doc["total_ms"] > 0
        assert "sim.core" in doc["shares"]

    def test_obs_cli_spans_subcommand(self, tmp_path):
        out = tmp_path / "spans_trace.json"
        proc = self._run("-m", "repro.obs", "spans", "histogram'",
                         "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "causal spans:" in proc.stdout
        assert "repair chain #0" in proc.stdout
        assert "caused by:" in proc.stdout
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "s", "t", "f"} <= phases  # slices + flow arrows
        assert doc["otherData"]["repair_chains"] >= 1

    def test_obs_cli_writes_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        proc = self._run(
            "-m", "repro.obs", "linear_regression",
            "--trace", str(trace), "--jsonl", str(jsonl),
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        lines = jsonl.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)

    def test_collect_bench_schema(self):
        from repro.obs.bench import BENCH_SCHEMA, collect_bench

        bench = collect_bench(["histogram'"], runs=3)
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["config"]["runs"] == 3
        entry = bench["workloads"]["histogram'"]
        for key in ("native_cycles", "laser_cycles", "overhead",
                    "records_per_sec", "hitm_events", "repaired"):
            assert key in entry
        assert entry["overhead"] > 0
        assert bench["geomean_overhead"] > 0

    def test_bench_cycles_deterministic(self):
        from repro.obs.bench import collect_bench

        first = collect_bench(["histogram'"], runs=3)
        second = collect_bench(["histogram'"], runs=3)
        a = first["workloads"]["histogram'"]
        b = second["workloads"]["histogram'"]
        # simulated fields are seed-deterministic; wall-clock is not
        assert a["native_cycles"] == b["native_cycles"]
        assert a["laser_cycles"] == b["laser_cycles"]
        assert a["hitm_events"] == b["hitm_events"]
