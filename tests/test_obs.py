"""Observability: event tracing, windowed metrics, telemetry, bench.

The load-bearing guarantees under test:

* determinism — same seed + config produce byte-identical trace JSONL
  and metrics snapshots;
* isolation — tracing observes, it never perturbs: simulated cycles are
  identical with tracing on, off, or ring-starved;
* boundedness — the ring sheds oldest events and accounts for them;
* near-zero disabled cost — the per-site guard budget stays under 2%
  of run wall-clock.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core.config import LaserConfig
from repro.core.laser import Laser
from repro.obs import (
    NULL_TRACER,
    Counter,
    EventTracer,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    WindowStats,
)
from repro.obs.trace import chrome_lane
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.obs

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def traced_run(name="linear_regression", seed=0, **overrides):
    overrides.setdefault("trace_enabled", True)
    config = LaserConfig(seed=seed, **overrides)
    return Laser(config).run_workload(get_workload(name))


@pytest.fixture(scope="module")
def traced():
    """One traced linear_regression run shared by the read-only tests."""
    return traced_run()


def make_window(index=0, start=0, end=50_000, **overrides):
    fields = dict(
        index=index, start_cycle=start, end_cycle=end, stalled=False,
        repair_state="idle", hitm_events=10, hitm_rate=200.0,
        records_seen=5, records_admitted=5, records_dropped=0,
        detector_cycles=100, driver_cycles=50, ssb_flushes=0,
        ssb_htm_aborts=0,
    )
    fields.update(overrides)
    return WindowStats(**fields)


class TestTracerUnit:
    def test_ring_sheds_oldest_and_accounts_for_drops(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit("x.e", cycle=i)
        assert len(tracer) == 4
        assert tracer.events_emitted == 10
        assert tracer.events_dropped == 6
        assert [e.cycle for e in tracer.events()] == [6, 7, 8, 9]

    def test_null_tracer_never_emits_even_if_reenabled(self):
        NULL_TRACER.enabled = True
        try:
            NULL_TRACER.emit("x.e", cycle=1)
        finally:
            NULL_TRACER.enabled = False
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events_emitted == 0

    def test_jsonl_is_canonical(self):
        tracer = EventTracer()
        tracer.emit("b.second", cycle=2, zeta=1, alpha=2)
        lines = tracer.to_jsonl().splitlines()
        assert lines == [
            '{"args":{"alpha":2,"zeta":1},"cycle":2,"name":"b.second","ph":"i"}'
        ]

    def test_chrome_lanes_split_by_component(self):
        assert chrome_lane("pebs.sample", {"core": 3}) == (1, 3)
        assert chrome_lane("machine.slice", None) == (1, 99)
        assert chrome_lane("driver.drain", {"core": 1}) == (2, 1)
        assert chrome_lane("repair.attach", None) == (3, 0)
        assert chrome_lane("laser.run_begin", None) == (3, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestMetricsUnit:
    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(3)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.snapshot() == 3

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        for value in (5, 50, 500, 7):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"le_10": 2, "le_100": 1}
        assert snap["overflow"] == 1
        assert snap["min"] == 5.0 and snap["max"] == 500.0
        assert hist.mean == pytest.approx(140.5)

    def test_snapshot_is_byte_stable(self):
        registry = MetricsRegistry()
        registry.gauge("z").set(1.5)
        registry.counter("a").inc()
        first = MetricsRegistry.snapshot_json(registry.snapshot())
        second = MetricsRegistry.snapshot_json(registry.snapshot())
        assert first == second == '{"a":1,"z":1.5}'


class TestTelemetryUnit:
    def test_series_and_totals(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, 0, 50_000, hitm_events=4))
        telemetry.record_window(
            make_window(1, 50_000, 100_000, hitm_events=6)
        )
        assert telemetry.series("hitm_events") == [4, 6]
        assert telemetry.totals()["hitm_events"] == 10
        with pytest.raises(KeyError):
            telemetry.series("no_such_field")

    def test_window_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            make_window(bogus=1)

    def test_timeline_marks_states(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, repair_state="attached"))
        telemetry.record_window(
            make_window(1, 50_000, 100_000, stalled=True)
        )
        timeline = telemetry.render_timeline()
        lines = timeline.splitlines()
        assert len(lines) == 3  # header + two windows
        assert lines[1].rstrip().endswith("R")
        assert lines[2].rstrip().endswith("S")

    def test_empty_timeline_renders_placeholder(self):
        assert "no detection windows" in RunTelemetry().render_timeline()

    def test_drop_rate_is_a_per_second_rate(self):
        window = make_window(records_dropped=50)  # 50 drops / 50k cycles
        from repro._constants import CYCLES_PER_SECOND

        assert window.drop_rate == pytest.approx(
            50 * CYCLES_PER_SECOND / 50_000)
        degenerate = make_window(end=0, records_dropped=50)
        assert degenerate.drop_rate == 0.0

    def test_timeline_plots_drop_rate_column(self):
        telemetry = RunTelemetry()
        telemetry.record_window(make_window(0, records_dropped=100))
        timeline = telemetry.render_timeline()
        assert "drop/s" in timeline.splitlines()[0]
        from repro._constants import CYCLES_PER_SECOND

        expected = "%.0f" % (100 * CYCLES_PER_SECOND / 50_000)
        assert expected in timeline.splitlines()[1]

    def test_timeline_adds_mode_column_only_for_control_runs(self):
        plain = RunTelemetry()
        plain.record_window(make_window(0))
        assert "mode" not in plain.render_timeline().splitlines()[0]

        controlled = RunTelemetry()
        controlled.record_window(
            make_window(0, control_mode="shedding", records_offered=400,
                        records_shed=144, sav=76, admit_budget=128)
        )
        lines = controlled.render_timeline().splitlines()
        assert "mode" in lines[0] and "shed" in lines[0]
        # Shedding renders as the "S" mode glyph plus the shed count.
        assert lines[1].split()[-2:] == ["S", "144"]


class TestRunDeterminism:
    def test_same_seed_same_bytes(self, traced):
        again = traced_run()
        assert (traced.telemetry.tracer.to_jsonl()
                == again.telemetry.tracer.to_jsonl())
        assert (traced.telemetry.windows_jsonl()
                == again.telemetry.windows_jsonl())
        assert (traced.telemetry.snapshots_jsonl()
                == again.telemetry.snapshots_jsonl())

    def test_different_seed_different_trace(self, traced):
        other = traced_run(seed=1)
        assert (traced.telemetry.tracer.to_jsonl()
                != other.telemetry.tracer.to_jsonl())

    def test_tracing_never_perturbs_the_simulation(self, traced):
        untraced = traced_run(trace_enabled=False)
        assert untraced.cycles == traced.cycles
        assert (untraced.pmu.total_hitm_count
                == traced.pmu.total_hitm_count)
        assert untraced.repaired == traced.repaired
        assert len(untraced.telemetry.tracer) == 0
        assert untraced.telemetry.tracer.events_emitted == 0

    def test_starved_ring_still_identical_cycles(self, traced):
        starved = traced_run(trace_capacity=8)
        assert starved.cycles == traced.cycles
        assert len(starved.telemetry.tracer) == 8
        assert starved.telemetry.tracer.events_dropped > 0
        assert (starved.telemetry.tracer.events_emitted
                == traced.telemetry.tracer.events_emitted)


class TestRunTraceContent:
    def test_lifecycle_events_present(self, traced):
        tracer = traced.telemetry.tracer
        names = {e.name for e in tracer.events()}
        assert "laser.run_begin" in names
        assert "laser.run_end" in names
        assert "pebs.sample" in names
        assert "driver.drain" in names
        assert "detect.window_roll" in names
        assert "detect.line_over_threshold" in names
        # linear_regression's false sharing gets repaired (Figure 11).
        assert "repair.plan" in names
        assert "repair.attach" in names
        # the attached SSB flushes through HTM transactions
        assert "htm.begin" in names
        assert "htm.commit" in names

    def test_cycles_are_monotonic_where_ordered(self, traced):
        tracer = traced.telemetry.tracer
        rolls = [e.cycle for e in tracer.events_named("detect.window_roll")]
        assert rolls and rolls == sorted(rolls)
        # drains are stamped with each core's last buffered record, so
        # they are monotonic per core (not across cores within a poll)
        per_core = {}
        for event in tracer.events_named("driver.drain"):
            per_core.setdefault(event.args["core"], []).append(event.cycle)
        assert per_core
        for cycles in per_core.values():
            assert cycles == sorted(cycles)

    def test_windows_are_contiguous(self, traced):
        windows = traced.telemetry.windows
        assert windows
        for previous, window in zip(windows, windows[1:]):
            assert window.start_cycle == previous.end_cycle
            assert window.index == previous.index + 1
        for window in windows:
            expected = (window.hitm_events * 1_000_000
                        / window.duration_cycles)
            assert window.hitm_rate == pytest.approx(expected)

    def test_repair_state_transitions_to_attached(self, traced):
        states = traced.telemetry.series("repair_state")
        assert states[0] == "idle"
        assert "attached" in states

    def test_snapshots_track_windows(self, traced):
        telemetry = traced.telemetry
        assert len(telemetry.snapshots) == telemetry.window_count
        last = telemetry.snapshots[-1]
        assert last["hitm.events"] == telemetry.totals()["hitm_events"]
        assert last["records.seen"] == telemetry.totals()["records_seen"]

    def test_chrome_trace_structure(self, traced):
        doc = traced.telemetry.to_chrome_trace()
        events = doc["traceEvents"]
        assert events
        json.dumps(doc)  # must serialize
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata
                 if e["name"] == "process_name"}
        assert "LASER kernel driver" in names
        assert "LASER detector + repair" in names
        counters = [e for e in events if e["ph"] == "C"]
        assert {c["name"] for c in counters} >= {"hitm_rate", "record_flow"}
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e.get("s") == "t" for e in instants)


class TestRunHealthSurfacing:
    def test_info_fields_do_not_degrade(self, traced):
        health = traced.health
        assert "undecodable_pcs" in health._FIELDS
        assert "records_pending_at_exit" in health._FIELDS
        assert health.undecodable_pcs >= 0
        assert health.records_pending_at_exit >= 0
        assert not health.degraded

    def test_info_fields_show_in_summary(self):
        from repro.core.laser import RunHealth

        health = RunHealth()
        health.undecodable_pcs = 3
        assert not health.degraded
        assert "undecodable_pcs=3" in health.summary()


class TestDisabledOverhead:
    def test_guard_budget_under_two_percent(self, traced):
        """Disabled tracing costs one attribute load + branch per site.

        Bound it: (guard executions, measured as events emitted by the
        traced twin) x (measured per-guard cost) must stay under 2% of
        the untraced run's wall-clock.
        """
        emitted = traced.telemetry.tracer.events_emitted
        assert emitted > 0

        tracer = NULL_TRACER
        iterations = 200_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            if tracer.enabled:  # pragma: no cover - never taken
                raise AssertionError
        per_guard = (time.perf_counter() - t0) / iterations

        t0 = time.perf_counter()
        traced_run(trace_enabled=False)
        run_wall = time.perf_counter() - t0

        assert emitted * per_guard < 0.02 * run_wall


class TestCliAndBench:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_SRC, env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, *argv], capture_output=True, text=True,
            env=env, timeout=300,
        )

    def test_obs_cli_smoke(self):
        proc = self._run("-m", "repro.obs", "--smoke")
        assert proc.returncode == 0, proc.stderr
        assert "smoke ok" in proc.stdout
        assert "phase timeline" in proc.stdout
        assert "cycle breakdown" in proc.stdout

    def test_obs_cli_writes_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        proc = self._run(
            "-m", "repro.obs", "linear_regression",
            "--trace", str(trace), "--jsonl", str(jsonl),
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        lines = jsonl.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)

    def test_collect_bench_schema(self):
        from repro.obs.bench import BENCH_SCHEMA, collect_bench

        bench = collect_bench(["histogram'"], runs=3)
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["config"]["runs"] == 3
        entry = bench["workloads"]["histogram'"]
        for key in ("native_cycles", "laser_cycles", "overhead",
                    "records_per_sec", "hitm_events", "repaired"):
            assert key in entry
        assert entry["overhead"] > 0
        assert bench["geomean_overhead"] > 0

    def test_bench_cycles_deterministic(self):
        from repro.obs.bench import collect_bench

        first = collect_bench(["histogram'"], runs=3)
        second = collect_bench(["histogram'"], runs=3)
        a = first["workloads"]["histogram'"]
        b = second["workloads"]["histogram'"]
        # simulated fields are seed-deterministic; wall-clock is not
        assert a["native_cycles"] == b["native_cycles"]
        assert a["laser_cycles"] == b["laser_cycles"]
        assert a["hitm_events"] == b["hitm_events"]
