"""Tests for the interpreter and the machine event loop."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.sim.core import CoreState
from repro.sim.locks import (
    emit_barrier_wait,
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)
from repro.sim.machine import Machine

from helpers import make_counter_program


def single_thread(builder):
    asm = Assembler()
    builder(asm)
    asm.halt()
    return Program("t", [asm.build()])


def run_single(builder, seed=0):
    machine = Machine(single_thread(builder), seed=seed, jitter=False)
    result = machine.run()
    return machine, result


class TestAluSemantics:
    def test_arithmetic(self):
        def body(asm):
            asm.mov("r0", 6)
            asm.mul("r1", "r0", 7)
            asm.sub("r2", "r1", 2)
            asm.div("r3", "r2", 4)
            asm.and_("r4", "r1", 0xF)
            asm.or_("r5", "r4", 0x30)
            asm.xor("r6", "r5", 0xFF)
            asm.shl("r7", "r0", 2)
            asm.shr("r8", "r7", 1)

        machine, _ = run_single(body)
        regs = machine.cores[0].registers
        assert regs[1] == 42
        assert regs[2] == 40
        assert regs[3] == 10
        assert regs[4] == 42 & 0xF
        assert regs[5] == (42 & 0xF) | 0x30
        assert regs[7] == 24 and regs[8] == 12

    def test_sixty_four_bit_wraparound(self):
        def body(asm):
            asm.mov("r0", 0)
            asm.sub("r0", "r0", 1)

        machine, _ = run_single(body)
        assert machine.cores[0].registers[0] == (1 << 64) - 1

    def test_division_by_zero_raises(self):
        def body(asm):
            asm.div("r0", 1, 0)

        with pytest.raises(SimulationError):
            run_single(body)


class TestControlFlow:
    def test_loop_executes_expected_iterations(self):
        def body(asm):
            asm.mov("r0", 5)
            asm.label("loop")
            asm.add("r1", "r1", 10)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "loop")

        machine, _ = run_single(body)
        assert machine.cores[0].registers[1] == 50

    def test_branch_kinds(self):
        def body(asm):
            asm.mov("r0", 3)
            asm.blt("r0", 5, "lt_taken")
            asm.mov("r9", 111)  # skipped
            asm.label("lt_taken")
            asm.bge("r0", 3, "ge_taken")
            asm.mov("r9", 222)  # skipped
            asm.label("ge_taken")
            asm.beq("r0", 3, "eq_taken")
            asm.mov("r9", 333)  # skipped
            asm.label("eq_taken")
            asm.mov("r8", 1)

        machine, _ = run_single(body)
        assert machine.cores[0].registers[9] == 0
        assert machine.cores[0].registers[8] == 1


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        def body(asm):
            asm.mov("r1", 0x10000000)
            asm.store("r1", 0xBEEF, size=4)
            asm.load("r2", "r1", size=4)

        machine, _ = run_single(body)
        assert machine.cores[0].registers[2] == 0xBEEF

    def test_addm_semantics(self):
        def body(asm):
            asm.mov("r1", 0x10000000)
            asm.store("r1", 40, size=8)
            asm.addm("r1", 2, size=8)

        machine, _ = run_single(body)
        assert machine.memory.read(0x10000000, 8) == 42

    def test_cmpxchg_success_and_failure(self):
        def body(asm):
            asm.mov("r1", 0x10000000)
            asm.cmpxchg("r2", "r1", 0, 7, size=8)   # succeeds: 0 -> 7
            asm.cmpxchg("r3", "r1", 0, 9, size=8)   # fails: value is 7

        machine, _ = run_single(body)
        assert machine.cores[0].registers[2] == 0
        assert machine.cores[0].registers[3] == 7
        assert machine.memory.read(0x10000000, 8) == 7

    def test_xadd_returns_old_value(self):
        def body(asm):
            asm.mov("r1", 0x10000000)
            asm.store("r1", 10, size=8)
            asm.xadd("r2", "r1", 5, size=8)

        machine, _ = run_single(body)
        assert machine.cores[0].registers[2] == 10
        assert machine.memory.read(0x10000000, 8) == 15


class TestMachineLoop:
    def test_register_conventions(self):
        program = make_counter_program(num_threads=3, iters=2)
        machine = Machine(program)
        for tid in range(3):
            assert machine.cores[tid].registers[14] == tid
        machine.run()

    def test_final_counter_values_are_exact(self):
        program = make_counter_program(num_threads=4, iters=100, stride=8)
        machine = Machine(program, seed=3)
        machine.run()
        for tid in range(4):
            assert machine.memory.read(0x10000040 + 8 * tid, 8) == 100

    def test_deterministic_given_seed(self):
        results = [
            Machine(make_counter_program(iters=60), seed=5).run().cycles
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_different_seeds_vary_interleaving(self):
        cycles = {
            Machine(make_counter_program(iters=60), seed=s).run().cycles
            for s in range(4)
        }
        assert len(cycles) > 1

    def test_resumable_run_matches_single_shot(self):
        program = make_counter_program(iters=80)
        one_shot = Machine(program, seed=2).run()
        program2 = make_counter_program(iters=80)
        machine = Machine(program2, seed=2)
        result = machine.run(until_cycle=5_000)
        assert not result.finished
        result = machine.run()
        assert result.finished
        assert result.cycles == one_shot.cycles

    def test_livelock_guard_raises(self):
        asm = Assembler()
        asm.label("spin")
        asm.jmp("spin")
        with pytest.raises(SimulationError):
            Machine(Program("spin", [asm.build()])).run(max_cycles=5_000)

    def test_too_many_threads_rejected(self):
        threads = []
        for _ in range(5):
            asm = Assembler()
            asm.halt()
            threads.append(asm.build())
        with pytest.raises(SimulationError):
            Machine(Program("big", threads))

    def test_hitm_hook_charges_extra_cycles(self):
        program = make_counter_program(iters=100)
        baseline = Machine(program, seed=1, jitter=False).run().cycles
        program2 = make_counter_program(iters=100)
        machine = Machine(program2, seed=1, jitter=False)
        machine.on_hitm = lambda core, inst, addr, w, cyc: 500
        machine.run()
        # The stall cycles are charged (total runtime may move either
        # way: a stalled writer also acts as contention backoff).
        assert machine.injected_stall_cycles >= 500
        assert machine.cores[0].stats.pmu_stall_cycles > 0

    def test_replace_code_mid_run_remaps_pc(self):
        program = make_counter_program(num_threads=1, iters=500)
        machine = Machine(program, seed=0)
        machine.run(until_cycle=300)
        core = machine.cores[0]
        old_index = core.pc_index
        # Identity rewrite: same instructions with a shifted prologue.
        asm = Assembler()
        asm.nop()
        code = program.threads[0]
        new_instructions = [asm._instructions[0]] + [
            inst.copy() for inst in code.instructions
        ]
        for inst in new_instructions[1:]:
            if inst.is_branch:
                inst.target += 1
        index_map = {i: i + 1 for i in range(len(code.instructions))}
        core.replace_code(new_instructions, index_map)
        assert core.pc_index == old_index + 1
        machine.run()
        assert machine.memory.read(0x10000040, 8) == 500


class TestLocks:
    def _locked_increment_program(self, acquire, iters=60):
        lock_addr = 0x10000000
        counter = 0x10000100
        threads = []
        for tid in range(4):
            asm = Assembler("locker_%d" % tid)
            asm.mov("r0", iters)
            asm.label("outer")
            asm.mov("r1", lock_addr)
            acquire(asm, "r1", "acq")
            # Critical section: non-atomic RMW, safe only under the lock.
            asm.mov("r2", counter)
            asm.load("r3", "r2", size=8)
            asm.add("r3", "r3", 1)
            asm.store("r2", "r3", size=8)
            asm.mov("r1", lock_addr)
            emit_lock_release(asm, "r1")
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "outer")
            asm.halt()
            threads.append(asm.build())
        return Program("locked", threads), counter

    def test_naive_lock_provides_mutual_exclusion(self):
        program, counter = self._locked_increment_program(
            emit_naive_lock_acquire)
        machine = Machine(program, seed=7)
        machine.run()
        assert machine.memory.read(counter, 8) == 240

    def test_ttas_lock_provides_mutual_exclusion(self):
        program, counter = self._locked_increment_program(
            emit_ttas_lock_acquire)
        machine = Machine(program, seed=9)
        machine.run()
        assert machine.memory.read(counter, 8) == 240

    def test_barrier_releases_all_threads(self):
        barrier = 0x10000000
        after = 0x10000100
        threads = []
        for tid in range(4):
            asm = Assembler("b%d" % tid)
            asm.mov("r9", barrier)
            emit_barrier_wait(asm, "r9", 4, "only")
            asm.mov("r1", after + 64 * tid)
            asm.store("r1", 1, size=8)
            asm.halt()
            threads.append(asm.build())
        machine = Machine(Program("barrier", threads), seed=1)
        machine.run()
        for tid in range(4):
            assert machine.memory.read(after + 64 * tid, 8) == 1
