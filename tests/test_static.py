"""Tests for the static analysis package (``repro.static``).

Covers the stride-interval domain, the abstract interpreter's
footprints (including counted-loop induction), the lockset analysis
over the cmpxchg idioms, the sharing predictor, the rewrite verifier
and its gate inside LASERREPAIR, and the static-vs-dynamic recall
acceptance bar.
"""

import pytest

from repro.core.detect.linemodel import SharingType
from repro.core.detect.report import ContentionClass
from repro.core.repair.analysis import analyze_thread
from repro.core.repair.manager import LaserRepair
from repro.core.repair.rewrite import rewrite_thread
from repro.experiments.static_cmp import run_static_cmp
from repro.isa.assembler import Assembler
from repro.isa.instructions import Instruction, Opcode, imm, reg
from repro.isa.program import Program, SourceLocation, ThreadCode
from repro.sim.locks import (
    emit_lock_release,
    emit_naive_lock_acquire,
    emit_ttas_lock_acquire,
)
from repro.static.absint import analyze_thread_values, thread_entry_registers
from repro.static.interval import StrideInterval
from repro.static.lockset import analyze_locksets, collect_lock_addresses
from repro.static.predict import predict_program
from repro.static.verify import verify_rewrite
from repro.workloads.registry import get_workload

from helpers import make_counter_program


# ----------------------------------------------------------------------
# Stride intervals
# ----------------------------------------------------------------------

class TestStrideInterval:
    def test_const_is_singleton(self):
        c = StrideInterval.const(7)
        assert c.is_const and c.stride == 0 and c.span == 0

    def test_join_of_strided_points_recovers_stride(self):
        joined = StrideInterval.const(0x100).join(StrideInterval.const(0x140))
        assert joined == StrideInterval(0x100, 0x140, 0x40)

    def test_join_keeps_gcd_stride(self):
        a = StrideInterval(0, 64, 8)
        b = StrideInterval(4, 100, 12)
        joined = a.join(b)
        assert joined.lo == 0 and joined.stride == 4

    def test_widen_drops_moved_bound_only(self):
        old = StrideInterval(0, 10, 1)
        widened = old.widen(StrideInterval(0, 20, 1))
        assert widened.lo == 0 and widened.hi is None

    def test_meet_range_keeps_known_bound_against_unbounded(self):
        half = StrideInterval(None, 100, 1)
        met = half.meet_range(10, None)
        assert met == StrideInterval(10, 100, 1)

    def test_meet_range_empty_is_none(self):
        assert StrideInterval(0, 5, 1).meet_range(6, None) is None

    def test_meet_range_snaps_to_stride_grid(self):
        grid = StrideInterval(0, 64, 8)
        met = grid.meet_range(3, None)
        assert met.lo == 8 and met.stride == 8

    def test_mul_by_constant_scales_stride(self):
        scaled = StrideInterval(0, 10, 1).mul(StrideInterval.const(8))
        assert scaled == StrideInterval(0, 80, 8)

    def test_overlap_disjoint_ranges(self):
        a = StrideInterval(0x100, 0x100, 0)
        b = StrideInterval(0x200, 0x200, 0)
        assert not a.may_overlap(8, b, 8)

    def test_overlap_adjacent_but_touching(self):
        a = StrideInterval.const(0x100)
        b = StrideInterval.const(0x107)
        assert a.may_overlap(8, b, 8)

    def test_stride_residue_disjointness(self):
        # Interleaved AoS fields: {0, 16, 32...} vs {8, 24, 40...} with
        # 8-byte accesses never collide despite interleaved ranges.
        a = StrideInterval(0x1000, 0x1100, 16)
        b = StrideInterval(0x1008, 0x1108, 16)
        assert not a.may_overlap(8, b, 8)
        # ...but 9-byte accesses from the first would reach the second.
        assert a.may_overlap(9, b, 8)

    def test_unbounded_overlaps_conservatively(self):
        assert StrideInterval.top().may_overlap(8, StrideInterval.const(0), 8)


# ----------------------------------------------------------------------
# Abstract interpretation / footprints
# ----------------------------------------------------------------------

class TestAbsint:
    def test_counter_thread_footprints_are_exact(self):
        program = make_counter_program(num_threads=2)
        values = analyze_thread_values(program.threads[1])
        stores = [fp for fp in values.footprints if fp.is_store]
        assert stores, "counter thread has a store"
        for fp in stores:
            assert fp.addr == StrideInterval.const(0x10000040 + 8)

    def test_counted_loop_pointer_bump_stays_bounded(self):
        asm = Assembler("w")
        asm.mov("r1", 0x20000)
        asm.mov("r0", 100)
        asm.label("loop")
        asm.store("r1", 1, size=8)
        asm.add("r1", "r1", 16)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "loop")
        asm.halt()
        values = analyze_thread_values(asm.build())
        store = next(fp for fp in values.footprints if fp.is_store)
        assert store.bounded
        assert store.addr.lo == 0x20000
        assert store.addr.stride == 16
        assert store.addr.hi == 0x20000 + 100 * 16

    def test_countup_loop_with_header_exit_test(self):
        asm = Assembler("w")
        asm.mov("r0", 0)
        asm.label("loop")
        asm.bge("r0", 50, "done")
        asm.store("r0", 1, size=8, offset=0x30000)
        asm.add("r0", "r0", 1)
        asm.jmp("loop")
        asm.label("done")
        asm.halt()
        values = analyze_thread_values(asm.build())
        store = next(fp for fp in values.footprints if fp.is_store)
        assert store.bounded
        assert store.addr.lo == 0x30000
        assert store.addr.hi <= 0x30000 + 50

    def test_uncounted_loop_footprint_is_unbounded_not_divergent(self):
        # The pointer is bumped by a *register* each iteration: not the
        # counted-loop idiom, so no induction hull applies — classic
        # widening must both terminate and report the loss honestly.
        asm = Assembler("w")
        asm.mov("r1", 0x40000)
        asm.mov("r2", 8)
        asm.mov("r0", 10)
        asm.label("loop")
        asm.store("r1", 1, size=8)
        asm.add("r1", "r1", "r2")
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "loop")
        asm.halt()
        values = analyze_thread_values(asm.build())
        store = next(fp for fp in values.footprints if fp.is_store)
        assert not store.bounded
        assert store in values.unbounded_footprints

    def test_entry_registers_distinguish_threads(self):
        entry0 = thread_entry_registers(0)
        entry1 = thread_entry_registers(1)
        assert entry0[14] == StrideInterval.const(0)
        assert entry1[14] == StrideInterval.const(1)
        assert entry0[15] != entry1[15]


# ----------------------------------------------------------------------
# Locksets
# ----------------------------------------------------------------------

def _locked_counter_code(lock_addr: int, counter_addr: int, ttas: bool):
    asm = Assembler("locked")
    asm.mov("r1", lock_addr)
    asm.mov("r2", counter_addr)
    asm.mov("r0", 10)
    asm.label("loop")
    if ttas:
        emit_ttas_lock_acquire(asm, "r1", "t")
    else:
        emit_naive_lock_acquire(asm, "r1", "n")
    asm.addm("r2", 1, size=8)
    emit_lock_release(asm, "r1")
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    return asm.build()


class TestLocksets:
    @pytest.mark.parametrize("ttas", [False, True])
    def test_lock_held_across_critical_section(self, ttas):
        lock_addr, counter_addr = 0x50000, 0x50040
        code = _locked_counter_code(lock_addr, counter_addr, ttas)
        values = analyze_thread_values(code)
        locks = collect_lock_addresses(values)
        assert locks == {lock_addr}
        locksets = analyze_locksets(values, frozenset(locks))
        instructions = code.instructions
        addm = next(i for i, inst in enumerate(instructions)
                    if inst.op is Opcode.ADDM)
        assert locksets.held_at(addm) == frozenset({lock_addr})

    def test_lock_released_by_store(self):
        lock_addr = 0x50000
        code = _locked_counter_code(lock_addr, 0x50040, ttas=False)
        values = analyze_thread_values(code)
        locksets = analyze_locksets(values, frozenset({lock_addr}))
        instructions = code.instructions
        release = next(i for i, inst in enumerate(instructions)
                       if inst.op is Opcode.STORE)
        # Held right *at* the release; gone at the loop test after it.
        assert locksets.held_at(release) == frozenset({lock_addr})
        assert locksets.held_at(release + 1) == frozenset()

    def test_cmpxchg_without_success_test_acquires_nothing(self):
        asm = Assembler("w")
        asm.mov("r1", 0x50000)
        asm.cmpxchg("r2", "r1", 0, 1, size=8)
        asm.addm("r1", 1, size=8, offset=64)
        asm.halt()
        code = asm.build()
        values = analyze_thread_values(code)
        locksets = analyze_locksets(values, frozenset({0x50000}))
        assert locksets.held_at(2) == frozenset()


# ----------------------------------------------------------------------
# Sharing prediction
# ----------------------------------------------------------------------

class TestPredictor:
    def test_counter_program_predicted_false_sharing(self):
        report = predict_program(make_counter_program())
        loc = SourceLocation("counter.c", 14)
        row = report.line_for(loc)
        assert row is not None
        assert row.contention_class is ContentionClass.FALSE_SHARING
        assert row in report.false_sharing_lines()

    def test_true_sharing_when_threads_hit_same_word(self):
        report = predict_program(make_counter_program(stride=0))
        row = report.line_for(SourceLocation("counter.c", 14))
        assert row is not None
        assert row.contention_class is ContentionClass.TRUE_SHARING

    def test_private_counters_predict_nothing(self):
        # Distinct cache lines per thread: no cross-thread pairs at all.
        report = predict_program(make_counter_program(stride=64))
        assert report.lines == []
        assert report.flagged_cache_lines() == set()

    def test_lock_protected_pairs_marked_synchronized(self):
        lock_addr, counter_addr = 0x50000, 0x50040
        program = Program("locked", [
            _locked_counter_code(lock_addr, counter_addr, ttas=False)
            for _ in range(2)
        ])
        report = predict_program(program)
        counter_line = counter_addr // 64
        pred = report.line_predictions.get(counter_line)
        assert pred is not None
        assert pred.ts_pairs > 0
        assert pred.lock_protected

    @pytest.mark.static
    def test_workload_prediction_flags_the_documented_bug_line(self):
        workload = get_workload("linear_regression")
        built = workload.build(heap_offset=64, seed=0)
        report = predict_program(built.program)
        predicted = set(report.predicted_locations())
        assert any(
            bug.covers(loc) for bug in workload.bugs for loc in predicted
        )


# ----------------------------------------------------------------------
# Rewrite verification
# ----------------------------------------------------------------------

def _planned_rewrite(program, thread=0):
    pcs = {
        inst.pc
        for code in program.threads
        for inst in code.instructions
        if inst.op in (Opcode.LOAD, Opcode.STORE, Opcode.ADDM)
    }
    code = program.threads[thread]
    analysis = analyze_thread(code, pcs)
    new_code, index_map = rewrite_thread(code, analysis)
    return code, analysis, new_code, index_map


def _flush_discipline_violations(instructions):
    """Run obligation 1 alone over a hand-built instruction list."""
    from repro.static.verify import _check_flush_discipline

    for pc, inst in enumerate(instructions):
        inst.pc = pc
    violations = []
    _check_flush_discipline(ThreadCode("ob1", instructions, {}), violations)
    return violations


def _with_nop_at(new_code, position):
    instructions = list(new_code.instructions)
    old = instructions[position]
    nop = Instruction(Opcode.NOP, loc=old.loc, region=old.region)
    nop.pc = old.pc
    instructions[position] = nop
    return ThreadCode(new_code.name, instructions, dict(new_code.labels))


class TestVerifier:
    def test_real_rewrite_verifies_clean(self):
        code, analysis, new_code, index_map = _planned_rewrite(
            make_counter_program())
        result = verify_rewrite(code, analysis, new_code, index_map, thread=0)
        assert result.ok, result.summary()

    def test_removed_flush_is_rejected(self):
        code, analysis, new_code, index_map = _planned_rewrite(
            make_counter_program())
        flush = next(i for i, inst in enumerate(new_code.instructions)
                     if inst.op is Opcode.SSB_FLUSH)
        bad = _with_nop_at(new_code, flush)
        result = verify_rewrite(code, analysis, bad, index_map, thread=0)
        assert not result.ok
        # The dirty buffer drains at HALT (a runtime ordering point), so
        # the missing flush surfaces as a confinement violation: the
        # analysis said "flush here" and the rewrite has none.
        assert any(v.kind == "confinement" for v in result.violations)

    def test_direct_store_while_dirty_breaks_tso(self):
        # A plain STORE with buffered bytes still in the SSB becomes
        # globally visible before the older buffered stores —
        # store-store reordering, the one hazard obligation 1 exists
        # to catch.
        violations = _flush_discipline_violations([
            Instruction(Opcode.MOV, rd=1, a=imm(0x10000)),
            Instruction(Opcode.SSB_STORE, a=reg(1), b=imm(1), size=8),
            Instruction(Opcode.STORE, a=reg(1), b=imm(2), offset=64, size=8),
            Instruction(Opcode.HALT),
        ])
        assert len(violations) == 1
        assert violations[0].kind == "tso-flush"
        assert "store-store reordering" in violations[0].message

    def test_flush_before_direct_store_is_clean(self):
        violations = _flush_discipline_violations([
            Instruction(Opcode.MOV, rd=1, a=imm(0x10000)),
            Instruction(Opcode.SSB_STORE, a=reg(1), b=imm(1), size=8),
            Instruction(Opcode.SSB_FLUSH),
            Instruction(Opcode.STORE, a=reg(1), b=imm(2), offset=64, size=8),
            Instruction(Opcode.HALT),
        ])
        assert violations == []

    def test_halt_drains_straight_line_code_without_a_flush(self):
        # The message-passing litmus shape: the rewriter plans *no*
        # flushes for straight-line code and relies on the runtime
        # drain at HALT (thread exit is a synchronization point).
        violations = _flush_discipline_violations([
            Instruction(Opcode.MOV, rd=1, a=imm(0x10000)),
            Instruction(Opcode.SSB_STORE, a=reg(1), b=imm(42), size=8),
            Instruction(Opcode.MOV, rd=2, a=imm(0x10100)),
            Instruction(Opcode.SSB_STORE, a=reg(2), b=imm(1), size=8),
            Instruction(Opcode.HALT),
        ])
        assert violations == []

    def test_falling_off_the_end_dirty_is_flagged(self):
        violations = _flush_discipline_violations([
            Instruction(Opcode.MOV, rd=1, a=imm(0x10000)),
            Instruction(Opcode.SSB_STORE, a=reg(1), b=imm(1), size=8),
        ])
        assert len(violations) == 1
        assert violations[0].kind == "tso-flush"
        assert "falls off the end" in violations[0].message

    def test_uninstrumented_region_store_is_rejected(self):
        code, analysis, new_code, index_map = _planned_rewrite(
            make_counter_program())
        ssb_store = next(i for i, inst in enumerate(new_code.instructions)
                         if inst.op is Opcode.SSB_STORE)
        instructions = list(new_code.instructions)
        original = instructions[ssb_store]
        raw = Instruction(Opcode.STORE, a=original.a, b=original.b,
                          offset=original.offset, size=original.size,
                          loc=original.loc, region=original.region)
        raw.pc = original.pc
        instructions[ssb_store] = raw
        bad = ThreadCode(new_code.name, instructions, dict(new_code.labels))
        result = verify_rewrite(code, analysis, bad, index_map, thread=0)
        assert not result.ok
        assert any(v.kind == "confinement" for v in result.violations)

    def test_stray_flush_outside_plan_is_rejected(self):
        code, analysis, new_code, index_map = _planned_rewrite(
            make_counter_program())
        instructions = list(new_code.instructions)
        stray = Instruction(Opcode.SSB_FLUSH, region="app")
        stray.pc = instructions[0].pc
        # Replacing the first MOV keeps every index/target valid.
        instructions[0] = stray
        bad = ThreadCode(new_code.name, instructions, dict(new_code.labels))
        result = verify_rewrite(code, analysis, bad, index_map, thread=0)
        assert not result.ok
        assert any(v.kind == "confinement" for v in result.violations)

    def test_manager_gate_rejects_corrupted_rewrites(self, monkeypatch):
        import repro.core.repair.manager as manager_module

        def sabotage(code, analysis):
            new_code, index_map = rewrite_thread(code, analysis)
            flush = next(i for i, inst in enumerate(new_code.instructions)
                         if inst.op is Opcode.SSB_FLUSH)
            return _with_nop_at(new_code, flush), index_map

        monkeypatch.setattr(manager_module, "rewrite_thread", sabotage)
        program = make_counter_program()
        pcs = {
            inst.pc for code in program.threads
            for inst in code.instructions
            if inst.op in (Opcode.LOAD, Opcode.STORE, Opcode.ADDM)
        }
        repairer = LaserRepair()
        plan = repairer.plan(program, pcs)
        assert not plan.profitable
        assert plan.verifier_rejected
        assert "verification failed" in plan.rejected_reason
        assert repairer.plans_verifier_rejected == 1
        assert repairer.plans_rejected == 1

    def test_manager_gate_passes_real_plans(self):
        program = make_counter_program()
        pcs = {
            inst.pc for code in program.threads
            for inst in code.instructions
            if inst.op in (Opcode.LOAD, Opcode.STORE, Opcode.ADDM)
        }
        repairer = LaserRepair()
        plan = repairer.plan(program, pcs)
        assert plan.profitable
        assert plan.verifier_results
        assert all(v.ok for v in plan.verifier_results.values())
        assert repairer.plans_verifier_rejected == 0

    def test_gate_can_be_disabled(self):
        repairer = LaserRepair(verify_rewrites=False)
        program = make_counter_program()
        pcs = {
            inst.pc for code in program.threads
            for inst in code.instructions
            if inst.op in (Opcode.LOAD, Opcode.STORE, Opcode.ADDM)
        }
        plan = repairer.plan(program, pcs)
        assert plan.profitable
        assert plan.verifier_results == {}


# ----------------------------------------------------------------------
# Static vs. dynamic (the acceptance bar)
# ----------------------------------------------------------------------

@pytest.mark.static
class TestStaticVsDynamic:
    def test_fs_recall_is_total_on_clean_fs_workloads(self):
        result = run_static_cmp(workloads=[
            get_workload("linear_regression"),
            get_workload("reverse_index"),
            get_workload("word_count"),
        ])
        for row in result.rows:
            assert row.dynamic_fs, "dynamic run must observe FS for %s" % row.name
            assert row.fs_recall == 1.0, (
                "%s: static prediction missed dynamic FS lines %r"
                % (row.name, row.missed_fs_lines))

    def test_dynamic_line_counters_populated(self):
        result = run_static_cmp(workloads=[get_workload("linear_regression")])
        row = result.rows[0]
        assert row.dynamic_fs
        assert row.static_flagged
        assert row.precision is not None


class TestLineModelCounters:
    def test_per_line_counters_follow_classification(self):
        from repro.core.detect.linemodel import CacheLineModel

        model = CacheLineModel()
        base = 0x1000  # line 0x40
        assert model.observe(base, 8, True) is SharingType.NONE
        assert model.observe(base + 8, 8, True) is SharingType.FALSE_SHARING
        assert model.observe(base + 8, 8, True) is SharingType.TRUE_SHARING
        assert model.line_events(base // 64) == (1, 1)
        assert model.contended_lines() == {base // 64: (1, 1)}
        assert model.contended_lines(SharingType.FALSE_SHARING) == {
            base // 64: (1, 1)}
        assert model.contended_lines(
            SharingType.FALSE_SHARING, min_events=2) == {}
