"""Tests for the PEBS substrate: imprecision, PMU sampling, driver."""

from repro.isa.program import PC_STRIDE
from repro.pebs.driver import KernelDriver
from repro.pebs.events import PebsRecord, StrippedRecord
from repro.pebs.imprecision import ImprecisionModel, ImprecisionParams
from repro.pebs.pmu import PerformanceMonitoringUnit
from repro.sim.vmmap import APP_CODE_BASE


def make_model(seed=0, **params):
    return ImprecisionModel(
        APP_CODE_BASE, APP_CODE_BASE + 0x20000,
        params=ImprecisionParams(**params), seed=seed,
    )


class _FakeInst:
    def __init__(self, pc):
        self.pc = pc


class TestImprecision:
    def test_load_records_track_the_paper_accuracy_bands(self):
        """RW: ~75% correct addresses, ~40% exact PCs, ~70% adjacent."""
        model = make_model(per_pc_jitter=0.0)
        pc, addr = APP_CODE_BASE + 400, 0x10000040
        n = 4000
        stats = {"addr": 0, "exact": 0, "adj": 0}
        for _ in range(n):
            rpc, raddr = model.distort(pc, addr, store_triggered=False)
            stats["addr"] += raddr == addr
            verdict = ImprecisionModel.classify_pc(rpc, pc)
            stats["exact"] += verdict == "exact"
            stats["adj"] += verdict in ("exact", "adjacent")
        assert 0.70 < stats["addr"] / n < 0.80
        assert 0.36 < stats["exact"] / n < 0.48
        assert 0.64 < stats["adj"] / n < 0.80

    def test_store_records_are_highly_inaccurate(self):
        """WW: ~10% correct addresses, exact PCs rare, adjacent ~34%."""
        model = make_model(per_pc_jitter=0.0)
        pc, addr = APP_CODE_BASE + 400, 0x10000040
        n = 4000
        stats = {"addr": 0, "exact": 0, "adj": 0}
        for _ in range(n):
            rpc, raddr = model.distort(pc, addr, store_triggered=True)
            stats["addr"] += raddr == addr
            verdict = ImprecisionModel.classify_pc(rpc, pc)
            stats["exact"] += verdict == "exact"
            stats["adj"] += verdict in ("exact", "adjacent")
        assert stats["addr"] / n < 0.16
        assert stats["exact"] / n < 0.12
        assert 0.24 < stats["adj"] / n < 0.45

    def test_wrong_pcs_mostly_stay_in_the_binary(self):
        """Over 99% of incorrect PCs come from the program's binary."""
        model = make_model(per_pc_jitter=0.0)
        pc = APP_CODE_BASE + 400
        wrong, in_binary = 0, 0
        for _ in range(4000):
            rpc, _ = model.distort(pc, 0x10000040, store_triggered=True)
            if ImprecisionModel.classify_pc(rpc, pc) == "wrong":
                wrong += 1
                in_binary += APP_CODE_BASE <= rpc < APP_CODE_BASE + 0x20000
        assert wrong > 0
        assert in_binary / wrong > 0.97

    def test_wrong_addresses_mostly_unmapped(self):
        """95% of incorrect data addresses come from unmapped space."""
        from repro.pebs.imprecision import UNMAPPED_BASE, UNMAPPED_SPAN

        model = make_model(per_pc_jitter=0.0)
        wrong, unmapped = 0, 0
        for _ in range(4000):
            _, raddr = model.distort(APP_CODE_BASE + 400, 0x10000040, True)
            if raddr != 0x10000040:
                wrong += 1
                unmapped += UNMAPPED_BASE <= raddr < UNMAPPED_BASE + UNMAPPED_SPAN
        assert unmapped / wrong > 0.88

    def test_per_pc_jitter_spreads_test_cases(self):
        """Different PCs get different accuracies (the Figure 3 scatter)."""
        model = make_model(per_pc_jitter=0.15)
        rates = []
        for pc_index in range(8):
            pc = APP_CODE_BASE + 64 * pc_index
            exact = sum(
                ImprecisionModel.classify_pc(
                    model.distort(pc, 0x10000040, False)[0], pc
                ) == "exact"
                for _ in range(500)
            )
            rates.append(exact / 500)
        assert max(rates) - min(rates) > 0.05

    def test_classify_pc(self):
        assert ImprecisionModel.classify_pc(100, 100) == "exact"
        assert ImprecisionModel.classify_pc(100 + PC_STRIDE, 100) == "adjacent"
        assert ImprecisionModel.classify_pc(100 + 5 * PC_STRIDE, 100) == "wrong"


class TestPmu:
    def test_sav_samples_every_nth_event_per_core(self):
        driver = KernelDriver()
        pmu = PerformanceMonitoringUnit(make_model(), driver,
                                        sample_after_value=5)
        inst = _FakeInst(APP_CODE_BASE + 40)
        for _ in range(23):
            pmu.on_hitm(0, inst, 0x10000040, False, 0)
        assert pmu.hitm_counts[0] == 23
        assert pmu.records_generated == 4  # events 5, 10, 15, 20

    def test_sav_counters_are_per_core(self):
        pmu = PerformanceMonitoringUnit(make_model(), KernelDriver(),
                                        sample_after_value=10)
        inst = _FakeInst(APP_CODE_BASE + 40)
        for core in range(4):
            for _ in range(9):
                pmu.on_hitm(core, inst, 0x10000040, False, 0)
        assert pmu.records_generated == 0
        assert pmu.total_hitm_count == 36

    def test_disabled_pebs_counts_but_never_records(self):
        pmu = PerformanceMonitoringUnit(make_model(), KernelDriver(),
                                        sample_after_value=1,
                                        pebs_enabled=False)
        inst = _FakeInst(APP_CODE_BASE + 40)
        assert pmu.on_hitm(0, inst, 0x10000040, False, 0) == 0
        assert pmu.total_hitm_count == 1
        assert pmu.records_generated == 0

    def test_record_cost_charged_on_sampled_events_only(self):
        pmu = PerformanceMonitoringUnit(make_model(), KernelDriver(),
                                        sample_after_value=2, record_cost=123)
        inst = _FakeInst(APP_CODE_BASE + 40)
        assert pmu.on_hitm(0, inst, 0x10000040, False, 0) == 0
        assert pmu.on_hitm(0, inst, 0x10000040, False, 0) >= 123


class TestDriver:
    def _record(self, core, cycle):
        return PebsRecord(APP_CODE_BASE + 4, 0x10000040, core, cycle, False)

    def test_buffer_full_interrupt(self):
        driver = KernelDriver(buffer_records=4, interrupt_cost=999)
        costs = [driver.deliver(self._record(0, i)) for i in range(4)]
        assert costs == [0, 0, 0, 999]
        assert driver.interrupts == 1
        assert len(driver.read_records()) == 4

    def test_records_stripped_to_pc_addr_core(self):
        driver = KernelDriver(buffer_records=1)
        driver.deliver(self._record(2, 77))
        [rec] = driver.read_records()
        assert isinstance(rec, StrippedRecord)
        assert rec.core == 2 and rec.cycle == 77

    def test_timestamp_merge_across_cores(self):
        """Records from different core buffers come out in TSC order."""
        driver = KernelDriver(buffer_records=3)
        for i in range(3):
            driver.deliver(self._record(0, 10 + i))
        for i in range(3):
            driver.deliver(self._record(1, 5 + i))
        records = driver.read_records()
        cycles = [r.cycle for r in records]
        assert cycles == sorted(cycles)

    def test_flush_all_drains_partial_buffers(self):
        driver = KernelDriver(buffer_records=64)
        driver.deliver(self._record(0, 1))
        driver.deliver(self._record(1, 2))
        assert driver.pending_records == 2
        assert len(driver.flush_all()) == 2
        assert driver.pending_records == 0

    def test_driver_cycles_accumulate(self):
        driver = KernelDriver(buffer_records=2, interrupt_cost=100)
        for i in range(6):
            driver.deliver(self._record(0, i))
        assert driver.driver_cycles == 300
