"""Tests for the experiment harnesses (small scales)."""

import pytest

from repro.experiments.accuracy import (
    AccuracyRow,
    run_accuracy,
    score_report_lines,
)
from repro.experiments.characterize import run_characterization
from repro.experiments.runner import trimmed_mean
from repro.experiments.sav import run_sav_sweep
from repro.experiments.speedup import run_speedups
from repro.experiments.tables import geomean, render_bars, render_table
from repro.experiments.thresholds import run_threshold_sweep
from repro.isa.program import SourceLocation
from repro.workloads.characterization import CharacterizationCase
from repro.workloads.registry import get_workload


class TestHelpers:
    def test_trimmed_mean_drops_extremes(self):
        assert trimmed_mean([1.0, 100.0, 2.0, 3.0]) == 2.5

    def test_trimmed_mean_small_samples(self):
        assert trimmed_mean([4.0]) == 4.0
        assert trimmed_mean([2.0, 4.0]) == 3.0
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_geomean(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-9
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert lines[2].index("y") == lines[3].index("z")

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_bars(self):
        text = render_bars(["one", "two"], [1.0, 2.0])
        assert text.count("#") > 0


class TestScoring:
    def test_false_negative_when_no_bug_line_reported(self):
        workload = get_workload("linear_regression")
        score = score_report_lines(workload, [SourceLocation("other.c", 1)])
        assert score["fn"] == 1 and score["fp"] == 1

    def test_detection_via_any_bug_line(self):
        workload = get_workload("linear_regression")
        score = score_report_lines(
            workload, [SourceLocation("linear_regression.c", 119)]
        )
        assert score["fn"] == 0 and score["fp"] == 0

    def test_accuracy_row_dash_formatting(self):
        row = AccuracyRow("x", 0)
        assert row.cells()[1] == "-"


class TestSmallScaleExperiments:
    def test_accuracy_single_benchmark(self):
        result = run_accuracy([get_workload("linear_regression")])
        row = result.row_for("linear_regression")
        assert row.laser_fn == 0
        assert "Table 1" in result.render()

    def test_threshold_sweep_is_monotone_in_fp(self):
        result = run_threshold_sweep(
            [get_workload("histogram'"), get_workload("pca")],
            thresholds=[32, 1024, 65536],
        )
        fps = [fp for _t, fp, _fn in result.points]
        assert fps == sorted(fps, reverse=True)

    def test_threshold_sweep_fn_appears_at_extremes(self):
        result = run_threshold_sweep(
            [get_workload("histogram'")], thresholds=[1024, 10 ** 9]
        )
        _fp_low, fn_low = result.at(1024.0)
        _fp_hi, fn_hi = result.at(float(10 ** 9))
        assert fn_low == 0 and fn_hi == 1

    def test_threshold_at_snaps_within_float_tolerance(self):
        from repro.experiments.thresholds import ThresholdSweepResult

        # Computed grids (base * 2**k, linspace steps) rarely equal the
        # literal a caller asks for; the lookup must snap, not KeyError.
        grid = ThresholdSweepResult(
            [(0.1 + 0.2, 3, 0), (1000.0000000001, 1, 2)],
            default_threshold=1000.0,
        )
        assert grid.at(0.3) == (3, 0)
        assert grid.at(1000.0) == (1, 2)
        with pytest.raises(KeyError) as excinfo:
            grid.at(512.0)
        # The error names the requested threshold and the actual grid.
        assert "512" in str(excinfo.value)
        assert "nearest" in str(excinfo.value)
        with pytest.raises(KeyError):
            ThresholdSweepResult([], 0.0).at(32.0)

    def test_sav_sweep_shape(self):
        result = run_sav_sweep("dedup", runs=1, sav_values=[1, 19])
        assert result.normalized_at(1) > result.normalized_at(19)
        assert "Figure 13" in result.render()

    def test_speedups_include_automatic_and_manual(self):
        result = run_speedups(runs=1)
        auto = result.entry_for("histogram'", "automatic")
        manual = result.entry_for("linear_regression", "manual")
        assert auto.speedup > 1.0 and auto.repaired
        assert manual.speedup > 3.0

    def test_characterization_subset_matches_bands(self):
        cases = [
            CharacterizationCase("TS", "RW", "alu", 4),
            CharacterizationCase("TS", "WW", "alu", 4),
        ]
        result = run_characterization(cases)
        means = result.group_means()
        assert means["TSRW"]["addr_correct"] > means["TSWW"]["addr_correct"]
        assert means["TSRW"]["pc_adjacent"] > means["TSWW"]["pc_adjacent"]
