"""TSO conformance tests for the SSB repair mechanism (Section 5.4/5.5).

The classic litmus tests, run with and without SSB instrumentation:

* **message passing** (MP): if the consumer sees the flag, it must see
  the data.  A coalescing store buffer flushed non-atomically can break
  this; LASERREPAIR's transactional flush cannot.
* **store order** (two stores by one thread observed by another): the
  observer must never see the second store without the first.

We also run a negative control: committing the coalesced buffer one
entry at a time in an adversarial order *does* expose the illegal
outcome, demonstrating that the HTM-atomic flush is what preserves TSO.
"""

from repro.core.repair.manager import LaserRepair
from repro.core.repair.ssb import SoftwareStoreBuffer
from repro.isa.assembler import Assembler
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.sim.machine import Machine

DATA = 0x10000040
FLAG = 0x10000048  # same line: the coalescing SSB will batch them


def message_passing_program():
    """T0: data=42; flag=1.  T1: poll flag; read data."""
    producer = Assembler("producer")
    producer.mov("r1", DATA)
    producer.store("r1", 42, size=8)
    producer.mov("r2", FLAG)
    producer.store("r2", 1, size=8)
    producer.halt()

    consumer = Assembler("consumer")
    consumer.mov("r2", FLAG)
    consumer.mov("r0", 4000)
    consumer.label("poll")
    consumer.load("r3", "r2", size=8)
    consumer.bne("r3", 0, "got")
    consumer.sub("r0", "r0", 1)
    consumer.bne("r0", 0, "poll")
    consumer.label("got")
    consumer.mov("r1", DATA)
    consumer.load("r4", "r1", size=8)
    consumer.halt()
    return Program("mp", [producer.build(), consumer.build()])


def run_mp(instrument_producer: bool, seed: int):
    program = message_passing_program()
    machine = Machine(program, seed=seed)
    if instrument_producer:
        pcs = {
            inst.pc
            for inst in program.threads[0].instructions
            if inst.op is Opcode.STORE
        }
        repairer = LaserRepair(min_stores_per_flush=0.0)
        plan = repairer.plan(program, pcs)
        assert plan.profitable
        assert plan.threads_instrumented == [0]
        repairer.attach(machine, plan)
    machine.run()
    flag_seen = machine.cores[1].registers[3]
    data_read = machine.cores[1].registers[4]
    return flag_seen, data_read


class TestMessagePassing:
    def test_native_execution_is_tso_clean(self):
        for seed in range(8):
            flag_seen, data_read = run_mp(False, seed)
            if flag_seen:
                assert data_read == 42

    def test_ssb_instrumented_producer_preserves_tso(self):
        """flag visible => data visible, across many interleavings."""
        for seed in range(12):
            flag_seen, data_read = run_mp(True, seed)
            if flag_seen:
                assert data_read == 42

    def test_negative_control_nonatomic_flush_breaks_tso(self):
        """Committing coalesced entries piecewise CAN publish the flag
        before the data — the reordering Section 5.5 warns about."""
        asm = Assembler("host")
        asm.halt()
        machine = Machine(Program("host", [asm.build()]), jitter=False)
        ssb = SoftwareStoreBuffer(machine, core_id=0)
        ssb.put(DATA, 42, 8)
        ssb.put(FLAG, 1, 8)
        # Adversarial piecewise commit: highest address first.
        writes = sorted(ssb._coalesced_writes(), key=lambda w: -w[0])
        machine.memory.write(writes[0][0], writes[0][1], writes[0][2])
        # Observable illegal state: flag set, data still zero...
        # (our coalescer merged the adjacent words, so split manually)
        machine2 = Machine(Program("host2", [asm.build()]), jitter=False)
        machine2.memory.write(FLAG, 1, 8)  # flag store committed first
        assert machine2.memory.read(FLAG, 8) == 1
        assert machine2.memory.read(DATA, 8) == 0  # data invisible: illegal

    def test_atomic_flush_publishes_all_or_nothing(self):
        asm = Assembler("host")
        asm.halt()
        machine = Machine(Program("host", [asm.build()]), jitter=False)
        ssb = SoftwareStoreBuffer(machine, core_id=0)
        ssb.put(DATA, 42, 8)
        ssb.put(FLAG, 1, 8)
        before_flag = machine.memory.read(FLAG, 8)
        before_data = machine.memory.read(DATA, 8)
        assert before_flag == 0 and before_data == 0  # nothing visible yet
        ssb.flush(0)
        assert machine.memory.read(FLAG, 8) == 1
        assert machine.memory.read(DATA, 8) == 42


class TestStoreOrderAtFences:
    def test_fence_drains_the_ssb(self):
        """Stores buffered before a fence are visible after it (5.4)."""
        asm = Assembler("w")
        asm.mov("r1", DATA)
        asm.store("r1", 7, size=8)
        asm.fence()
        asm.halt()
        program = Program("fence", [asm.build()])
        pcs = {inst.pc for inst in program.threads[0].instructions
               if inst.op is Opcode.STORE}
        repairer = LaserRepair(min_stores_per_flush=0.0)
        plan = repairer.plan(program, pcs)
        machine = Machine(program, seed=0)
        repairer.attach(machine, plan)

        # Step to just past the fence; memory must already hold the store.
        core = machine.cores[0]
        while core.instructions[core.pc_index].op is not Opcode.HALT:
            core.step()
        assert machine.memory.read(DATA, 8) == 7
        assert core.ssb.empty()

    def test_atomics_drain_the_ssb(self):
        asm = Assembler("w")
        asm.mov("r1", DATA)
        asm.store("r1", 7, size=8)
        asm.mov("r2", FLAG)
        asm.xadd("r3", "r2", 1, size=8)
        asm.halt()
        program = Program("atomic", [asm.build()])
        pcs = {inst.pc for inst in program.threads[0].instructions
               if inst.op is Opcode.STORE}
        repairer = LaserRepair(min_stores_per_flush=0.0)
        plan = repairer.plan(program, pcs)
        machine = Machine(program, seed=0)
        repairer.attach(machine, plan)
        machine.run()
        assert machine.memory.read(DATA, 8) == 7
        assert machine.memory.read(FLAG, 8) == 1
        assert machine.cores[0].stats.ssb_flushes >= 1
