"""Tests for LASERREPAIR: analysis, alias speculation, rewriting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.repair.analysis import analyze_thread
from repro.core.repair.cost import ASSUMED_TRIP_COUNT, estimate_stores_per_flush
from repro.core.repair.manager import LaserRepair
from repro.core.repair.rewrite import rewrite_thread
from repro.isa.assembler import Assembler
from repro.isa.cfg import build_cfg
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.sim.machine import Machine

from helpers import make_counter_program


def loop_store_code(with_fence=False, exempt_load=True):
    """Contending store loop, optionally with a fence per iteration."""
    asm = Assembler("w")
    asm.mov("r1", 0x10000040)   # store base
    asm.mov("r3", 0x10008000)   # private load base (different register)
    asm.mov("r0", 50)
    asm.label("loop")
    if exempt_load:
        asm.load("r4", "r3", size=8)
    asm.add("r4", "r4", 1)
    asm.store("r1", "r4", size=8)
    if with_fence:
        asm.fence()
    asm.sub("r0", "r0", 1)
    asm.bne("r0", 0, "loop")
    asm.halt()
    return asm.build()


def contending_pcs_of(code, program):
    return {
        inst.pc for inst in code.instructions if inst.op is Opcode.STORE
    }


class TestAnalysis:
    def test_contending_loop_gets_flush_at_exit(self):
        code = loop_store_code()
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        assert analysis.has_contention
        cfg = analysis.cfg
        # The flush block must be outside the loop (the exit block).
        assert analysis.flush_block is not None
        flush_block = cfg.blocks[analysis.flush_block]
        loop_block = cfg.block_of_instruction(
            next(i for i, inst in enumerate(code.instructions)
                 if inst.op is Opcode.STORE)
        )
        assert flush_block.index != loop_block.index
        assert flush_block.start > loop_block.end - 1

    def test_region_covers_loop_but_not_past_flush(self):
        code = loop_store_code()
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        assert analysis.flush_block not in analysis.region_blocks

    def test_no_contention_yields_empty_analysis(self):
        code = loop_store_code()
        analysis = analyze_thread(code, {0xDEAD})
        assert not analysis.has_contention
        assert analysis.instrumented_instruction_indices() == set()

    def test_speculative_alias_exempts_independent_load(self):
        code = loop_store_code(exempt_load=True)
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        load_index = next(i for i, inst in enumerate(code.instructions)
                          if inst.op is Opcode.LOAD)
        assert load_index in analysis.exempt_loads
        assert load_index in analysis.alias_checks

    def test_load_through_store_register_not_exempt(self):
        asm = Assembler("w")
        asm.mov("r1", 0x10000040)
        asm.mov("r0", 10)
        asm.label("loop")
        asm.load("r4", "r1", size=8)   # same base register as the store
        asm.store("r1", "r4", size=8)
        asm.sub("r0", "r0", 1)
        asm.bne("r0", 0, "loop")
        asm.halt()
        code = asm.build()
        program = Program("p", [code])
        pcs = {inst.pc for inst in code.instructions
               if inst.op is Opcode.STORE}
        analysis = analyze_thread(code, pcs)
        load_index = next(i for i, inst in enumerate(code.instructions)
                          if inst.op is Opcode.LOAD)
        assert load_index not in analysis.exempt_loads


class TestCostModel:
    def test_fence_free_loop_is_very_profitable(self):
        code = loop_store_code(with_fence=False)
        cfg = build_cfg(code)
        region = {cfg.block_of_instruction(4).index}
        ratio = estimate_stores_per_flush(cfg, region)
        assert ratio >= ASSUMED_TRIP_COUNT

    def test_fence_inside_loop_caps_the_ratio(self):
        code = loop_store_code(with_fence=True)
        cfg = build_cfg(code)
        store_index = next(i for i, inst in enumerate(code.instructions)
                           if inst.op is Opcode.STORE)
        region = {cfg.block_of_instruction(store_index).index}
        ratio = estimate_stores_per_flush(cfg, region)
        assert ratio <= 1.0


class TestRewrite:
    def test_stores_become_ssb_stores(self):
        code = loop_store_code()
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        new_code, index_map = rewrite_thread(code, analysis)
        ops = [inst.op for inst in new_code.instructions]
        assert Opcode.SSB_STORE in ops
        assert Opcode.SSB_FLUSH in ops
        assert Opcode.ALIAS_CHECK in ops
        assert Opcode.STORE not in ops or True  # stores outside region stay

    def test_index_map_is_order_preserving_and_total(self):
        code = loop_store_code()
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        _new_code, index_map = rewrite_thread(code, analysis)
        assert set(index_map) == set(range(len(code.instructions)))
        values = [index_map[i] for i in range(len(code.instructions))]
        assert values == sorted(values)

    def test_branch_targets_retargeted(self):
        code = loop_store_code()
        program = Program("p", [code])
        analysis = analyze_thread(code, contending_pcs_of(code, program))
        new_code, index_map = rewrite_thread(code, analysis)
        for old, new in zip(code.instructions,
                            (new_code.instructions[index_map[i]]
                             for i in range(len(code.instructions)))):
            if old.is_branch:
                assert new.target == index_map[old.target]


class TestManagerAndEquivalence:
    def test_plan_and_attach_repair_false_sharing(self):
        program = make_counter_program(iters=300)
        baseline = Machine(make_counter_program(iters=300), seed=1)
        baseline_result = baseline.run()

        machine = Machine(program, seed=1)
        repairer = LaserRepair()
        pcs = {
            inst.pc for inst in program.all_instructions()
            if inst.op is Opcode.STORE
        }
        plan = repairer.plan(program, pcs)
        assert plan.profitable
        repairer.attach(machine, plan)
        result = machine.run()
        # Same final memory values...
        for tid in range(4):
            assert machine.memory.read(0x10000040 + 8 * tid, 8) == 300
        # ...with (nearly) all coherence contention gone.
        assert result.hitm_count < baseline_result.hitm_count / 5

    def test_unprofitable_plan_is_rejected(self):
        code = loop_store_code(with_fence=True)
        program = Program("p", [code])
        repairer = LaserRepair(min_stores_per_flush=4.0)
        pcs = {inst.pc for inst in code.instructions
               if inst.op is Opcode.STORE}
        plan = repairer.plan(program, pcs)
        assert not plan.profitable
        assert "stores/flush" in plan.rejected_reason
        with pytest.raises(ValueError):
            repairer.attach(Machine(program), plan)

    def test_plan_with_unknown_pcs_rejected(self):
        program = make_counter_program()
        plan = LaserRepair().plan(program, {0xDEAD})
        assert not plan.profitable

    @given(st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 11),
                  st.sampled_from([1, 2, 4, 8]), st.booleans()),
        min_size=1, max_size=12,
    ), st.integers(2, 9))
    @settings(max_examples=30, deadline=None)
    def test_single_threaded_equivalence(self, ops, trip_count):
        """Instrumented code computes exactly what native code computes.

        Random loops of loads/stores over a small arena, instrumented
        with the full SSB treatment, must leave identical memory and
        registers (Section 5.2's single-threaded semantics).
        """
        def build():
            asm = Assembler("w")
            asm.mov("r1", 0x10000000)
            asm.mov("r0", trip_count)
            asm.label("loop")
            for reg_off, slot, size, is_store in ops:
                if is_store:
                    asm.store("r1", reg_off + 1, offset=slot * 8, size=size)
                else:
                    asm.load("r%d" % (2 + reg_off % 6), "r1",
                             offset=slot * 8, size=size)
                asm.add("r2", "r2", 1)
            asm.sub("r0", "r0", 1)
            asm.bne("r0", 0, "loop")
            asm.halt()
            return Program("prop", [asm.build()])

        native_program = build()
        native = Machine(native_program, seed=0, jitter=False)
        native.run()

        program = build()
        pcs = {inst.pc for inst in program.all_instructions()
               if inst.is_memory_op}
        repairer = LaserRepair(min_stores_per_flush=0.0)
        plan = repairer.plan(program, pcs)
        machine = Machine(program, seed=0, jitter=False)
        if plan.profitable:
            repairer.attach(machine, plan)
        machine.run()

        assert (machine.memory.read_bytes(0x10000000, 128)
                == native.memory.read_bytes(0x10000000, 128))
        assert machine.cores[0].registers == native.cores[0].registers
