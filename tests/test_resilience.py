"""Crash recovery (``repro.resilience``).

Four layers of coverage:

* unit tests for the shared retry/backoff policy, the write-ahead
  record journal (sequence stamping, batch marks, replay splitting,
  dedup idempotence, compaction), the CRC-guarded checkpoint store
  (generations, corrupt fallback, schema guard), and the supervisor
  state machine (heartbeats, backoff restarts, circuit breaker,
  rearm);
* system tests driving ``Laser`` under exact crash schedules: the
  checkpoint-less cold start, pre-poll and post-read detector crashes,
  driver wipes healed from the journal, corrupt-checkpoint fallback,
  and the breaker-driven degrade ladder down to passthrough with
  offline recovery — every one of which must converge to the
  fault-free run's diagnosis;
* invariants: a crash-free run is *bit-identical* with resilience on
  or off (the ≤5%-overhead requirement holds trivially at 0%), and a
  given (seed, schedule) pair reproduces byte-identical RunHealth
  accounting and trace sequences;
* the chaos soak (``-m chaos``): the full schedule x workload x seed
  grid from ``repro.experiments.chaos``, every cell converging.
"""

import json
import random

import pytest

from repro.core import Laser, LaserConfig, RunHealth
from repro.core.detect.pipeline import DetectionPipeline
from repro.experiments.chaos import (
    CRASH_SCHEDULES,
    run_chaos_case,
    run_chaos_soak,
    schedule_plan,
)
from repro.faults import FaultInjector, FaultPlan
from repro.pebs.events import StrippedRecord
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    Backoff,
    CheckpointStore,
    ComponentStatus,
    DegradeMode,
    RecordJournal,
    RetryPolicy,
    Supervisor,
)
from repro.resilience.checkpoint import encode_state
from repro.resilience.journal import batch_sort_key
from repro.workloads import get_workload


def record(seq_hint, pc=0x400000, addr=0x1000, core=0, cycle=0):
    return StrippedRecord(pc=pc, data_addr=addr, core=core, cycle=cycle)


# ----------------------------------------------------------------------
# Policy: shared backoff for repair re-evaluation and restarts
# ----------------------------------------------------------------------


class TestBackoffPolicy:
    def test_doubles_and_clamps(self):
        backoff = Backoff(1, 8)
        assert [backoff.step() for _ in range(5)] == [1, 2, 4, 8, 8]

    def test_matches_legacy_repair_schedule(self):
        # The historical inline counters in Laser.run_built produced
        # exactly this sequence for the default config (initial=2,
        # max=32); the shared policy must reproduce it bit-for-bit.
        config = LaserConfig()
        backoff = Backoff(config.repair_backoff_intervals,
                          config.repair_backoff_max)
        assert [backoff.step() for _ in range(6)] == [2, 4, 8, 16, 32, 32]

    def test_reset_and_restore_point(self):
        backoff = Backoff(2, 16)
        backoff.step()
        backoff.step()
        assert backoff.current == 8
        backoff.current = 4  # checkpoint restore path
        assert backoff.step() == 4
        backoff.reset()
        assert backoff.current == 2

    def test_jitter_is_seeded_and_additive(self):
        a = Backoff(2, 16, jitter=0.5, rng=random.Random(7))
        b = Backoff(2, 16, jitter=0.5, rng=random.Random(7))
        seq_a = [a.step() for _ in range(6)]
        seq_b = [b.step() for _ in range(6)]
        assert seq_a == seq_b  # same seed, same schedule
        base = Backoff(2, 16)
        for jittered, plain in zip(seq_a, [base.step() for _ in range(6)]):
            assert plain <= jittered <= int(plain * 1.5) + plain

    def test_jitter_schedule_is_a_pure_function_of_the_seed(self):
        # The documented jitter contract (see the Backoff docstring):
        # every jittered delay lies in [d, d + int(d * j)] for base
        # delay d, and the whole schedule is a pure function of the
        # RNG seed — a supervisor that dies and is rebuilt with the
        # same seed recomputes the identical restart schedule, which
        # is what keeps fleet shard restarts deterministic.
        knob_grid = ((1, 8, 0.5), (2, 16, 0.25), (3, 7, 1.0))
        for seed in range(25):
            for initial, maximum, jitter in knob_grid:
                first = Backoff(initial, maximum, jitter=jitter,
                                rng=random.Random(seed))
                schedule = [first.step() for _ in range(8)]
                restarted = Backoff(initial, maximum, jitter=jitter,
                                    rng=random.Random(seed))
                assert [restarted.step() for _ in range(8)] == schedule
                base = Backoff(initial, maximum)
                for jittered, plain in zip(
                        schedule, [base.step() for _ in range(8)]):
                    assert plain <= jittered <= plain + int(plain * jitter)

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(0, 8)
        with pytest.raises(ValueError):
            Backoff(1, 8, jitter=-0.1)

    def test_retry_budget_exhaustion(self):
        policy = RetryPolicy(initial=1, maximum=4, max_attempts=2)
        assert policy.next_delay() == 1
        assert policy.next_delay() == 2
        assert policy.exhausted
        assert policy.next_delay() is None

    def test_rearm_resets_budget_and_schedule(self):
        policy = RetryPolicy(initial=1, maximum=4, max_attempts=1)
        assert policy.next_delay() == 1
        assert policy.next_delay() is None
        policy.rearm(max_attempts=1)
        assert not policy.exhausted
        assert policy.next_delay() == 1  # schedule restarted too

    def test_unbounded_policy_never_exhausts(self):
        policy = RetryPolicy(initial=1, maximum=2, max_attempts=None)
        for _ in range(10):
            assert policy.next_delay() is not None


# ----------------------------------------------------------------------
# Journal: WAL semantics
# ----------------------------------------------------------------------


class TestRecordJournal:
    def test_append_stamps_monotone_seq(self):
        journal = RecordJournal()
        seqs = [journal.append(record(i)) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert journal.head_seq == 5
        assert journal.acked_seq == 0

    def test_marks_are_monotone(self):
        journal = RecordJournal()
        for i in range(6):
            journal.append(record(i))
        journal.mark_batch(4, cycle=100)
        journal.mark_batch(2, cycle=120)  # replays never move it back
        assert journal.acked_seq == 4
        journal.mark_batch(6, cycle=140)
        assert journal.acked_seq == 6

    def test_entries_after_watermark(self):
        journal = RecordJournal()
        for i in range(5):
            journal.append(record(i))
        assert [r.seq for r in journal.entries_after(3)] == [4, 5]
        assert journal.entries_after(5) == []

    def test_batches_after_splits_at_marks(self):
        journal = RecordJournal()
        for i in range(7):
            journal.append(record(i))
        journal.mark_batch(2, cycle=50)
        journal.mark_batch(5, cycle=100)
        batches, tail = journal.batches_after(0)
        assert [([r.seq for r in entries], cycle)
                for entries, cycle in batches] == [([1, 2], 50),
                                                   ([3, 4, 5], 100)]
        assert [r.seq for r in tail] == [6, 7]
        # From a mid-batch watermark only the unacked part replays.
        batches, tail = journal.batches_after(2)
        assert [[r.seq for r in entries] for entries, _ in batches] == [[3, 4, 5]]

    def test_dedup_against_watermark(self):
        journal = RecordJournal()
        records = [record(i) for i in range(4)]
        for r in records:
            journal.append(r)
        journal.mark_batch(2, cycle=10)
        fresh, dups = RecordJournal.dedup(records, journal.acked_seq)
        assert [r.seq for r in fresh] == [3, 4]
        assert dups == 2

    def test_truncate_through_compacts_entries_and_marks(self):
        journal = RecordJournal()
        for i in range(6):
            journal.append(record(i))
        journal.mark_batch(2, cycle=10)
        journal.mark_batch(5, cycle=20)
        assert journal.truncate_through(2) == 2
        assert len(journal) == 4
        assert journal.truncated == 2
        # The surviving mark still splits replay correctly.
        batches, tail = journal.batches_after(2)
        assert [[r.seq for r in e] for e, _ in batches] == [[3, 4, 5]]
        assert [r.seq for r in tail] == [6]

    def test_capacity_bound_sheds_oldest_with_accounting(self):
        journal = RecordJournal(max_entries=3)
        for i in range(5):
            journal.append(record(i))
        assert len(journal) == 3
        assert journal.overflow_dropped == 2
        assert [r.seq for r in journal.entries_after(0)] == [3, 4, 5]

    def test_batch_sort_key_is_the_driver_merge_order(self):
        records = [
            StrippedRecord(pc=3, data_addr=0, core=1, cycle=20),
            StrippedRecord(pc=1, data_addr=0, core=0, cycle=20),
            StrippedRecord(pc=2, data_addr=0, core=0, cycle=10),
        ]
        ordered = sorted(records, key=batch_sort_key)
        assert [(r.cycle, r.core, r.pc) for r in ordered] == [
            (10, 0, 2), (20, 0, 1), (20, 1, 3)]


# ----------------------------------------------------------------------
# Checkpoints: CRC, generations, fallback
# ----------------------------------------------------------------------


def _corrupting_injector(occurrences):
    plan = FaultPlan(seed=3)
    plan.add("checkpoint.corrupt", at=occurrences)
    return FaultInjector(plan)


class TestCheckpointStore:
    def test_roundtrip_latest_generation(self):
        store = CheckpointStore()
        store.save({"value": 1}, cycle=100)
        store.save({"value": 2}, cycle=200)
        state = store.load()
        assert state["value"] == 2
        assert state["schema"] == CHECKPOINT_SCHEMA
        assert store.written == 2
        assert store.restored == 1

    def test_keeps_two_generations(self):
        store = CheckpointStore(keep=2)
        for value in range(5):
            store.save({"value": value}, cycle=value * 10)
        assert len(store.snapshots) == 2
        assert [s.payload for s in store.snapshots] != []
        assert store.min_retained("value") == 3

    def test_corrupt_newest_falls_back_a_generation(self):
        store = CheckpointStore(injector=_corrupting_injector((0,)))
        store.save({"value": 1}, cycle=100)
        store.save({"value": 2}, cycle=200)
        state = store.load()
        assert state["value"] == 1  # newest failed its CRC
        assert store.corrupt_detected == 1
        assert store.restored == 1

    def test_every_generation_corrupt_is_a_cold_start(self):
        store = CheckpointStore(injector=_corrupting_injector((0, 1)))
        store.save({"value": 1}, cycle=100)
        store.save({"value": 2}, cycle=200)
        assert store.load() is None
        assert store.corrupt_detected == 2

    def test_schema_mismatch_counts_as_corrupt(self):
        store = CheckpointStore()
        store.save({"value": 1}, cycle=100)
        snapshot = store.snapshots[-1]
        state = json.loads(snapshot.payload.decode("utf-8"))
        state["schema"] = CHECKPOINT_SCHEMA + 1
        import zlib
        snapshot.payload = encode_state(state)
        snapshot.crc = zlib.crc32(snapshot.payload)
        assert store.load() is None
        assert store.corrupt_detected == 1

    def test_encode_state_is_canonical(self):
        assert encode_state({"b": 1, "a": 2}) == encode_state({"a": 2, "b": 1})


# ----------------------------------------------------------------------
# Checkpoint/journal coordination under a mid-compaction kill
# ----------------------------------------------------------------------


class TestTruncationRace:
    def test_kill_mid_truncation_replays_from_surviving_generation(self):
        # Regression for fleet shard supervision: a shard killed
        # between a checkpoint save and the journal compaction that
        # follows it must still recover when the *newest* generation
        # turns out corrupt at restore — compaction only drops entries
        # at or below the OLDEST retained watermark, so the surviving
        # generation's replay suffix is intact by construction.
        journal = RecordJournal()
        for i in range(10):
            journal.append(record(i))
        store = CheckpointStore(injector=_corrupting_injector((0,)))
        journal.mark_batch(4, cycle=100)
        store.save({"acked_seq": 4}, cycle=100)
        journal.mark_batch(8, cycle=200)
        store.save({"acked_seq": 8}, cycle=200)
        # The compaction the shard died in the middle of.
        journal.truncate_through(store.min_retained("acked_seq"))
        assert len(journal) == 6  # seqs 5..10 retained
        # Restore: occurrence 0 corrupts the newest generation, so
        # recovery falls back to the gen-1 snapshot.
        state = store.load()
        assert state["acked_seq"] == 4
        assert store.corrupt_detected == 1
        # The truncated journal still replays the full suffix from the
        # surviving generation's watermark...
        batches, tail = journal.batches_after(state["acked_seq"])
        replayed = [r.seq for entries, _ in batches for r in entries]
        assert replayed == [5, 6, 7, 8]
        assert [r.seq for r in tail] == [9, 10]
        # ...and replaying it twice is idempotent: once the recovered
        # batch is re-acked, a second delivery dedups completely.
        for entries, cycle in batches:
            journal.mark_batch(entries[-1].seq, cycle)
        redelivered = [r for entries, _ in batches for r in entries]
        fresh, dups = RecordJournal.dedup(redelivered, journal.acked_seq)
        assert fresh == [] and dups == 4


# ----------------------------------------------------------------------
# Supervisor: heartbeats, restarts, breaker, rearm
# ----------------------------------------------------------------------


def _supervisor(max_attempts=2):
    supervisor = Supervisor()
    supervisor.register("detector", RetryPolicy(
        initial=1, maximum=4, max_attempts=max_attempts))
    return supervisor


class TestSupervisor:
    def test_crash_schedules_backoff_restart(self):
        supervisor = _supervisor()
        assert supervisor.crash("detector", interval=3, cycle=1000)
        component = supervisor["detector"]
        assert component.status == ComponentStatus.DOWN
        assert component.restart_at == 4
        assert not supervisor.due("detector", 3)
        assert supervisor.due("detector", 4)
        supervisor.restart("detector", 4, cycle=1200)
        assert component.running
        assert component.restarts == 1

    def test_backoff_grows_across_crashes(self):
        supervisor = _supervisor(max_attempts=None)
        delays = []
        for interval in (1, 10, 20):
            supervisor.crash("detector", interval, cycle=0)
            delays.append(supervisor["detector"].restart_at - interval)
            supervisor.restart("detector", interval + delays[-1], cycle=0)
        assert delays == [1, 2, 4]

    def test_breaker_trips_when_budget_exhausted(self):
        supervisor = _supervisor(max_attempts=1)
        assert supervisor.crash("detector", 1, cycle=0)
        supervisor.restart("detector", 2, cycle=0)
        assert not supervisor.crash("detector", 3, cycle=0)
        component = supervisor["detector"]
        assert component.status == ComponentStatus.HALTED
        assert component.breaker_trips == 1
        assert not supervisor.due("detector", 100)

    def test_rearm_immediate_revives_now(self):
        supervisor = _supervisor(max_attempts=0)
        assert not supervisor.crash("detector", 1, cycle=0)
        supervisor.rearm("detector", 1, cycle=0, max_attempts=1)
        assert supervisor["detector"].running

    def test_rearm_deferred_flows_through_restart(self):
        supervisor = _supervisor(max_attempts=0)
        assert not supervisor.crash("detector", 5, cycle=0)
        supervisor.rearm("detector", 5, cycle=0, max_attempts=1,
                         immediate=False)
        component = supervisor["detector"]
        assert component.status == ComponentStatus.DOWN
        assert supervisor.due("detector", 6)
        restarts = component.restarts
        supervisor.restart("detector", 6, cycle=0)
        assert component.restarts == restarts + 1


# ----------------------------------------------------------------------
# Replay idempotence: the line model is exactly reconstructible
# ----------------------------------------------------------------------


def _journaled_run(workload="linear_regression"):
    """A healthy resilient run, returning (result, journal)."""
    result = Laser(LaserConfig()).run_workload(get_workload(workload))
    return result, result.resilience.journal


class TestReplayIdempotence:
    def test_replaying_a_suffix_twice_is_byte_identical(self):
        result, journal = _journaled_run()
        live = result.pipeline
        # Rebuild a fresh pipeline and replay the whole retained journal
        # the way _restore_detector does.
        fresh = DetectionPipeline(
            live.program, result.machine.vmmap,
            result.pipeline.sample_after_value,
        )
        batches, tail = journal.batches_after(0)
        window_start = 0
        for entries, poll_cycle in batches:
            fresh.process(sorted(entries, key=batch_sort_key))
            fresh.roll_window(poll_cycle - window_start, cycle=poll_cycle)
            window_start = poll_cycle
        once = encode_state(fresh.line_model.state_dict())
        # Replay the same suffix again: every record now falls at or
        # below the acked watermark, so dedup must make it a no-op.
        for entries, _ in batches:
            replayed, dups = RecordJournal.dedup(
                sorted(entries, key=batch_sort_key), journal.acked_seq)
            assert replayed == []
            assert dups == len(entries)
            fresh.process(replayed)
        assert encode_state(fresh.line_model.state_dict()) == once

    def test_checkpoint_plus_suffix_replay_reconstructs_the_live_model(self):
        # The real restore contract: the newest checkpoint plus the
        # journal suffix past its acked watermark reproduce the live
        # pipeline exactly.  (Replay from seq 0 is only guaranteed on
        # a cold start, before compaction has truncated the journal.)
        result, journal = _journaled_run()
        live = result.pipeline
        state = result.resilience.checkpoints.load()
        fresh = DetectionPipeline(
            live.program, result.machine.vmmap, live.sample_after_value,
        )
        fresh.load_state_dict(state["pipeline"])
        batches, tail = journal.batches_after(state["acked_seq"])
        for entries, poll_cycle in batches:
            fresh.process(sorted(entries, key=batch_sort_key))
        fresh.process(sorted(tail, key=batch_sort_key))
        assert (encode_state(fresh.line_model.state_dict())
                == encode_state(live.line_model.state_dict()))

    def test_pipeline_state_dict_roundtrip(self):
        result, _ = _journaled_run()
        live = result.pipeline
        state = live.state_dict()
        clone = DetectionPipeline(
            live.program, result.machine.vmmap, live.sample_after_value,
        )
        clone.load_state_dict(state)
        assert encode_state(clone.state_dict()) == encode_state(state)
        clone.reset_state()
        empty = DetectionPipeline(
            live.program, result.machine.vmmap, live.sample_after_value,
        )
        assert (encode_state(clone.state_dict())
                == encode_state(empty.state_dict()))


# ----------------------------------------------------------------------
# System: crash schedules against Laser
# ----------------------------------------------------------------------


def _crash_run(schedule, workload="linear_regression", seed=0, config=None):
    cfg = (config or LaserConfig()).replace(seed=seed, trace_enabled=True)
    plan = FaultPlan(seed=seed)
    for site, at in sorted(schedule.items()):
        plan.add(site, at=at)
    return Laser(cfg, faults=plan).run_workload(get_workload(workload))


class TestCrashRecovery:
    def test_cold_start_replays_journal_from_seq_zero(self):
        # Regression: the detector's first crash lands before any
        # checkpoint exists; the restart must reset the pipeline and
        # replay from seq 0, not fault on the missing snapshot.
        result = _crash_run({"detector.crash": (0,)})
        health = result.health
        assert health.detector_crashes == 1
        assert health.detector_crash_restarts == 1
        assert health.checkpoints_restored == 0  # nothing to restore
        replays = result.telemetry.tracer.events_named("resil.replay")
        assert replays and replays[0].args["from_seq"] == 0
        baseline = Laser(LaserConfig(trace_enabled=True)).run_workload(
            get_workload("linear_regression"))
        assert {str(line.location) for line in result.report.lines} == {
            str(line.location) for line in baseline.report.lines}

    def test_mid_run_crash_restores_a_checkpoint(self):
        result = _crash_run({"detector.crash": (8,)})
        health = result.health
        assert health.detector_crashes == 1
        assert health.checkpoints_restored == 1
        assert health.checkpoints_written > 0

    def test_post_read_crash_dedups_the_redelivery(self):
        # The batch was read but the crash hit before the ack: replay
        # recovers it from the journal and the driver's re-delivery is
        # recognized as duplicate.
        result = _crash_run({"detector.crash": (7,)})
        health = result.health
        assert health.detector_crashes == 1
        assert health.records_replayed > 0
        assert health.records_deduped > 0

    def test_driver_crash_heals_from_the_journal(self):
        result = _crash_run({"driver.crash": (1,)})
        health = result.health
        assert health.driver_crashes == 1
        assert health.driver_crash_restarts == 1
        assert health.records_replayed > 0  # the wiped volatiles
        assert health.detector_crashes == 0

    def test_corrupt_checkpoint_falls_back_a_generation(self):
        result = _crash_run({"detector.crash": (10,),
                             "checkpoint.corrupt": (0,)})
        health = result.health
        assert health.checkpoints_corrupt == 1
        assert health.checkpoints_restored == 1  # the older generation
        corrupt = result.telemetry.tracer.events_named(
            "resil.checkpoint_corrupt")
        assert corrupt and corrupt[0].args["reason"] == "crc_mismatch"

    def test_crash_counts_as_degraded(self):
        result = _crash_run({"detector.crash": (8,)})
        assert result.health.degraded

    def test_breaker_walks_the_degrade_ladder_without_aborting(self):
        # Zero restart budget: the first crash trips the breaker into
        # detection-only; the rearmed detector's next crash trips it
        # again into passthrough.  The run must still complete and the
        # report is recovered offline from the journal.
        config = LaserConfig(max_component_restarts=0, trace_enabled=True)
        plan = FaultPlan(seed=0).add("detector.crash", probability=1.0)
        result = Laser(config, faults=plan).run_workload(
            get_workload("linear_regression"))
        assert result.resilience.mode == DegradeMode.PASSTHROUGH
        assert result.health.breaker_trips == 2
        assert result.report is not None
        recovered = result.telemetry.tracer.events_named(
            "resil.offline_recover")
        assert recovered
        # Offline recovery replays the whole journal, so the diagnosis
        # still matches the fault-free run.
        baseline = Laser(LaserConfig()).run_workload(
            get_workload("linear_regression"))
        assert {str(line.location) for line in result.report.lines} == {
            str(line.location) for line in baseline.report.lines}

    def test_detection_only_mode_blocks_new_repairs(self):
        config = LaserConfig(max_component_restarts=0, trace_enabled=True)
        # One early crash trips the breaker (budget 0) before the
        # repair trigger fires; in detection-only mode the run must
        # finish unrepaired even though the contention is repairable.
        plan = FaultPlan(seed=0).add("detector.crash", at=(0,))
        result = Laser(config, faults=plan).run_workload(
            get_workload("linear_regression"))
        assert result.resilience.mode == DegradeMode.DETECTION_ONLY
        assert not result.repaired
        assert result.report.lines  # detection still works


# ----------------------------------------------------------------------
# Invariants: zero overhead when healthy, determinism when not
# ----------------------------------------------------------------------


class TestResilienceInvariants:
    def test_no_crash_run_is_bit_identical_with_resilience_off(self):
        # The ≤5%-overhead acceptance bar is met at exactly 0%: the
        # journal and checkpoints observe, they never charge cycles.
        workload = get_workload("linear_regression")
        on = Laser(LaserConfig(resilience_enabled=True)).run_workload(workload)
        off = Laser(LaserConfig(resilience_enabled=False)).run_workload(workload)
        assert on.cycles == off.cycles
        assert on.repaired == off.repaired
        assert on.report.render() == off.report.render()
        assert on.telemetry.windows_jsonl() == off.telemetry.windows_jsonl()
        assert off.resilience is None
        assert on.resilience is not None

    def test_healthy_run_records_zero_recovery_activity(self):
        result = Laser(LaserConfig()).run_workload(get_workload("histogram'"))
        health = result.health
        assert not health.degraded
        assert health.detector_crashes == 0
        assert health.records_replayed == 0
        assert health.records_deduped == 0
        assert health.checkpoints_written > 0  # insurance, not degradation
        assert "restarts detector=0" in health.recovery_summary()

    @pytest.mark.parametrize("schedule", ["detector-mid", "driver-early"])
    def test_same_seed_and_schedule_is_byte_deterministic(self, schedule):
        def run():
            cfg = LaserConfig(seed=5, trace_enabled=True)
            return Laser(cfg, faults=schedule_plan(schedule, seed=5)
                         ).run_workload(get_workload("linear_regression"))

        first, second = run(), run()
        assert first.health.as_dict() == second.health.as_dict()
        assert ([(e.cycle, e.name) for e in first.telemetry.tracer.events()]
                == [(e.cycle, e.name)
                    for e in second.telemetry.tracer.events()])
        assert (first.telemetry.windows_jsonl()
                == second.telemetry.windows_jsonl())

    def test_recovery_fields_are_first_class_health_fields(self):
        for field in ("detector_crashes", "driver_crash_restarts",
                      "breaker_trips", "records_replayed",
                      "records_deduped", "checkpoints_written",
                      "checkpoints_restored", "checkpoints_corrupt"):
            assert field in RunHealth._FIELDS
        # Writing checkpoints is informational; restoring one is not.
        assert "checkpoints_written" in RunHealth._INFO_FIELDS
        assert "checkpoints_restored" not in RunHealth._INFO_FIELDS


# ----------------------------------------------------------------------
# Chaos soak (-m chaos)
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestChaosSoak:
    @pytest.mark.parametrize("schedule", sorted(CRASH_SCHEDULES))
    def test_every_schedule_converges_across_workloads(self, schedule):
        outcomes = run_chaos_soak(schedules=[schedule], seeds=(0, 1))
        for outcome in outcomes:
            assert outcome.converged, (
                "%s diverged: baseline=%s chaotic=%s" % (
                    outcome, sorted(outcome.baseline_signature),
                    sorted(outcome.chaotic_signature)))

    def test_soak_cells_are_reproducible(self):
        first = run_chaos_case("linear_regression", "double-fault", seed=0)
        second = run_chaos_case("linear_regression", "double-fault", seed=0)
        assert first.health == second.health
        assert first.recovery_events == second.recovery_events

    def test_artifact_serializes(self, tmp_path):
        from repro.experiments.chaos import write_artifact

        outcome = run_chaos_case("histogram'", "detector-cold-start", seed=0)
        path = tmp_path / "chaos.jsonl"
        write_artifact([outcome], str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        cell = json.loads(lines[0])
        assert cell["converged"] is True
        assert any(event["name"] == "resil.replay"
                   for event in cell["recovery_events"])
