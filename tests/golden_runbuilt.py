"""Golden-pin collector for ``Laser.run_built`` bit-identity.

The service-kernel refactor (and anything after it) must keep a run's
observable outputs *bit-identical* per seed: simulated cycles, the
rendered contention report, the trace JSONL byte stream, the windowed
telemetry byte stream and the RunHealth dict.  This module materializes
those outputs for a fixed grid of (workload, seed, crash-schedule)
cells so ``tests/test_services.py`` can compare any future HEAD against
a recording taken at the pre-refactor commit.

Large byte streams (trace JSONL, windows JSONL) are pinned by SHA-256
so the golden file stays reviewable; cycles, report lines and the
health dict are stored verbatim.

Regenerate (only when an intentional behavior change lands)::

    PYTHONPATH=src:tests python tests/golden_runbuilt.py --regen
"""

import hashlib
import json
import os
from typing import List, Optional

from repro.core.config import LaserConfig
from repro.core.laser import Laser
from repro.experiments.chaos import schedule_plan
from repro.workloads import get_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "run_built_golden.json")

#: 3 workloads x 3 seeds, fault-free (the ISSUE's bit-identity grid)...
GOLDEN_WORKLOADS = ("histogram", "histogram'", "linear_regression")
GOLDEN_SEEDS = (0, 1, 2)
#: ...plus chaotic cells pinning the crash-recovery paths byte-for-byte
#: (restore, replay, dedup, corrupt-checkpoint fallback).  Chaotic runs
#: are deterministic per seed too, so they pin just as hard.
GOLDEN_SCHEDULES = ("double-fault", "corrupt-fallback")

#: Fleet-era RunHealth counters (``repro.fleet``): single-run cells
#: never attach a transport, so these must be **zero** in every golden
#: cell — asserted explicitly, by name, on top of the generic
#: post-golden-keys-are-zero rule, so a fleet hook that leaks into the
#: single-run path fails with a message naming the fleet.
FLEET_HEALTH_FIELDS = ("transport_partitions", "transport_records_delayed")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def collect_cell(workload_name: str, seed: int,
                 schedule: Optional[str] = None) -> dict:
    """One golden cell: every bit-identity-relevant output of a run."""
    cfg = LaserConfig().replace(seed=seed, trace_enabled=True)
    faults = schedule_plan(schedule, seed=seed) if schedule else None
    result = Laser(cfg, faults=faults).run_workload(
        get_workload(workload_name))
    return {
        "workload": workload_name,
        "seed": seed,
        "schedule": schedule,
        "cycles": result.cycles,
        "report": result.report.render().splitlines(),
        "health": result.health.as_dict(),
        "trace_events": len(result.telemetry.tracer),
        "trace_sha256": _sha256(result.telemetry.tracer.to_jsonl()),
        "windows": result.telemetry.window_count,
        "windows_sha256": _sha256(result.telemetry.windows_jsonl()),
    }


def assert_cell_matches(got: dict, golden: dict) -> None:
    """Assert a collected cell matches its golden recording.

    Every pinned key is compared strictly *except* ``health``: the
    RunHealth schema legitimately grows new counters in later PRs (the
    overload controller added eight), and a golden recorded before a
    counter existed cannot pin its value.  Health keys present in the
    golden are compared strictly; keys absent from the golden must be
    **zero** — a baseline run may not exercise machinery that did not
    exist when the pin was taken.  Everything else (cycles, report,
    trace/window byte hashes) stays byte-for-byte.
    """
    for key, want in golden.items():
        if key == "health":
            continue
        assert got[key] == want, (
            "golden mismatch for %s/%s/%s at %r: got %r, want %r"
            % (golden["workload"], golden["seed"], golden["schedule"],
               key, got[key], want)
        )
    got_health = got["health"]
    want_health = golden["health"]
    for key, want in want_health.items():
        assert got_health.get(key) == want, (
            "golden health mismatch at %r: got %r, want %r"
            % (key, got_health.get(key), want)
        )
    for key, value in got_health.items():
        if key not in want_health:
            assert value == 0, (
                "post-golden health counter %r is %r on a baseline run "
                "(new machinery must stay inert when disabled)"
                % (key, value)
            )
    for key in FLEET_HEALTH_FIELDS:
        assert got_health.get(key, 0) == 0, (
            "fleet health counter %r is %r on a single-run cell — a "
            "transport leaked into the transport-less path"
            % (key, got_health.get(key))
        )


def golden_cells() -> List[dict]:
    """The (workload, seed, schedule) grid, in deterministic order."""
    cells = [
        {"workload": w, "seed": s, "schedule": None}
        for w in GOLDEN_WORKLOADS for s in GOLDEN_SEEDS
    ]
    cells.extend(
        {"workload": w, "seed": 0, "schedule": sched}
        for w in GOLDEN_WORKLOADS for sched in GOLDEN_SCHEDULES
    )
    return cells


def collect_all() -> List[dict]:
    return [collect_cell(c["workload"], c["seed"], c["schedule"])
            for c in golden_cells()]


def load_golden() -> List[dict]:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def write_golden(cells: List[dict]) -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(cells, fh, indent=1, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("refusing to overwrite the golden without --regen")
    recorded = collect_all()
    write_golden(recorded)
    print("wrote %s (%d cells)" % (GOLDEN_PATH, len(recorded)))
