"""Shared fixtures for the test suite."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import make_counter_program  # noqa: E402


@pytest.fixture
def fs_program():
    """Four threads falsely sharing one cache line."""
    return make_counter_program()
