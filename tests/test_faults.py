"""Fault injection and graceful degradation (robustness PR).

Three layers of coverage:

* unit tests for the fault-plan/injector machinery, the bounded driver
  outbox, the record merge order, and the structured error types;
* system tests driving ``Laser.run_built`` under specific fault
  schedules: PEBS losses, detector stalls, repair errors with backoff,
  HTM abort storms (including the TSO litmus under the per-store
  fallback), and the post-repair watchdog rollback with its negative
  control;
* a property sweep (``-m faults``): 50 random seeded fault schedules
  across three workloads, each of which must complete with a coherent
  ``RunHealth`` report instead of an exception.

The golden tests pin the other invariant: an *empty* fault plan is
observationally free — byte-identical results to the seed behavior.
"""

import inspect

import pytest

from repro import errors as errors_mod
from repro.core import Laser, LaserConfig, RunHealth
from repro.core.repair.manager import LaserRepair
from repro.errors import (
    DetectorStall,
    FaultInjectionError,
    HtmAbort,
    ReproError,
)
from repro.faults import FAULT_SITES, FaultInjector, FaultPlan, FaultSpec
from repro.isa.instructions import Opcode
from repro.pebs.driver import KernelDriver
from repro.pebs.events import PebsRecord
from repro.sim.core import CoreState
from repro.sim.machine import Machine
from repro.workloads.registry import get_workload

from helpers import build_shifted_workload, make_counter_program

SSB_OPCODES = {
    Opcode.SSB_LOAD, Opcode.SSB_STORE, Opcode.SSB_ADDM,
    Opcode.SSB_FLUSH, Opcode.ALIAS_CHECK,
}

#: Config under which the shifted-contention workload repairs in phase 1.
SHIFT_CONFIG = LaserConfig(
    check_interval_cycles=25_000, repair_trigger_rate=2000.0
)


def _core_opcodes(machine):
    return [
        {inst.op for inst in core.instructions} for core in machine.cores
    ]


# ----------------------------------------------------------------------
# Fault plan / spec validation
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("pebs.nonsense", probability=0.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan().add("htm.frobnicate")

    def test_probability_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("htm.abort", probability=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultSpec("htm.abort", probability=1.5)
        FaultSpec("htm.abort", probability=0.0)
        FaultSpec("htm.abort", probability=1.0)

    def test_negative_occurrence_and_max_fires_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("detector.stall", at=[-1])
        with pytest.raises(FaultInjectionError):
            FaultSpec("detector.stall", max_fires=-2)

    def test_duplicate_site_rejected(self):
        plan = FaultPlan().add("htm.abort", probability=0.5)
        with pytest.raises(FaultInjectionError):
            plan.add("htm.abort", probability=0.1)

    def test_empty_plan_and_chaining(self):
        plan = FaultPlan(seed=3)
        assert plan.empty
        plan.add("pebs.record_drop", probability=0.1).add(
            "detector.stall", at=[2]
        )
        assert not plan.empty
        assert plan.spec_for("pebs.record_drop").probability == 0.1
        assert plan.spec_for("htm.abort") is None

    def test_random_plans_are_valid_and_deterministic(self):
        for seed in range(20):
            plan = FaultPlan.random(seed)
            again = FaultPlan.random(seed)
            assert not plan.empty
            assert plan.describe() == again.describe()
            for spec in plan.specs:
                assert spec.site in FAULT_SITES
                assert 0.0 < spec.probability <= 0.25

    def test_sites_documented_in_module_docstring(self):
        import repro.faults.plan as plan_mod

        for site in FAULT_SITES:
            assert site in plan_mod.__doc__


# ----------------------------------------------------------------------
# Injector semantics
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_empty_plan_never_fires_but_counts_occurrences(self):
        injector = FaultInjector(FaultPlan())
        assert not any(injector.fires("htm.abort") for _ in range(100))
        assert injector.occurrences["htm.abort"] == 100
        assert injector.total_fired == 0
        # The short-circuit means no RNG stream was ever materialized.
        assert injector._rngs == {}

    def test_fixed_occurrence_schedule(self):
        plan = FaultPlan().add("detector.stall", at=[0, 3])
        injector = FaultInjector(plan)
        fires = [injector.fires("detector.stall") for _ in range(6)]
        assert fires == [True, False, False, True, False, False]
        assert injector.fired["detector.stall"] == 2

    def test_probabilistic_fires_are_deterministic(self):
        plan = FaultPlan(seed=7).add("pebs.record_drop", probability=0.3)
        first = [FaultInjector(plan).fires("pebs.record_drop")
                 for _ in range(1)]
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.fires("pebs.record_drop") for _ in range(200)]
        seq_b = [b.fires("pebs.record_drop") for _ in range(200)]
        assert seq_a == seq_b
        assert 20 <= sum(seq_a) <= 100  # ~0.3 of 200, loosely
        assert first[0] == seq_a[0]

    def test_max_fires_cap(self):
        plan = FaultPlan().add("htm.abort", probability=1.0, max_fires=2)
        injector = FaultInjector(plan)
        fires = [injector.fires("htm.abort") for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_site_rngs_are_independent(self):
        plan = (FaultPlan(seed=1)
                .add("htm.abort", probability=0.5)
                .add("pebs.record_drop", probability=0.5))
        solo = FaultInjector(FaultPlan(seed=1).add("htm.abort",
                                                   probability=0.5))
        both = FaultInjector(plan)
        seq_solo = [solo.fires("htm.abort") for _ in range(100)]
        seq_both = []
        for _ in range(100):
            both.fires("pebs.record_drop")  # interleave the other site
            seq_both.append(both.fires("htm.abort"))
        assert seq_solo == seq_both


# ----------------------------------------------------------------------
# Bounded driver outbox + record merge order
# ----------------------------------------------------------------------

def _record(core, cycle, pc=0x1000, addr=0x2000):
    return PebsRecord(pc=pc, data_addr=addr, core=core, cycle=cycle,
                      store_triggered=False)


class TestBoundedOutbox:
    def test_overflow_drops_with_accounting(self):
        driver = KernelDriver(num_cores=1, buffer_records=4,
                              outbox_capacity=6)
        for i in range(12):  # three full-buffer drains of 4 records
            driver.deliver(_record(0, cycle=i))
        assert driver.records_forwarded == 6
        assert driver.records_dropped == 6
        assert driver.pending_records == 6
        assert len(driver.read_records()) == 6
        # The drops were silent for the data path but visible in stats.
        assert driver.records_dropped == 6

    def test_injected_overflow_drops_one_drain(self):
        plan = FaultPlan().add("driver.outbox_overflow", at=[1])
        driver = KernelDriver(num_cores=1, buffer_records=4,
                              injector=FaultInjector(plan))
        for i in range(8):
            driver.deliver(_record(0, cycle=i))
        # Second drain (occurrence index 1) was dropped wholesale.
        assert driver.records_forwarded == 4
        assert driver.records_dropped == 4

    def test_read_records_merges_by_cycle_core_pc(self):
        driver = KernelDriver(num_cores=3, buffer_records=64)
        driver.deliver(_record(2, cycle=5, pc=0x30))
        driver.deliver(_record(0, cycle=9, pc=0x10))
        driver.deliver(_record(1, cycle=5, pc=0x20))
        driver.deliver(_record(1, cycle=5, pc=0x15))
        driver.flush_all()
        records = driver.read_records()
        assert records == []  # flush_all already drained
        driver.deliver(_record(2, cycle=5, pc=0x30))
        driver.deliver(_record(0, cycle=9, pc=0x10))
        driver.deliver(_record(1, cycle=5, pc=0x20))
        driver.deliver(_record(1, cycle=5, pc=0x15))
        records = driver.flush_all()
        keys = [(r.cycle, r.core, r.pc) for r in records]
        assert keys == sorted(keys)
        assert keys[0] == (5, 1, 0x15)  # same cycle: core then pc breaks tie
        assert keys[-1] == (9, 0, 0x10)


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------

class TestStructuredErrors:
    def test_htm_abort_fields(self):
        abort = HtmAbort("capacity: 9 lines > 8 ways",
                         abort_pc=0x4000, conflict_line=17, abort_count=3)
        assert abort.is_capacity and not abort.is_conflict
        assert abort.abort_pc == 0x4000
        assert abort.conflict_line == 17
        assert abort.abort_count == 3
        conflict = HtmAbort("conflict: remote store hit the write set")
        assert conflict.is_conflict and not conflict.is_capacity
        assert conflict.abort_pc is None and conflict.conflict_line is None

    def test_htm_abort_reason_stays_first_positional(self):
        assert HtmAbort("capacity: x").reason.startswith("capacity")

    def test_errors_all_is_complete(self):
        public = {
            name
            for name, obj in vars(errors_mod).items()
            if inspect.isclass(obj) and issubclass(obj, Exception)
        }
        assert public == set(errors_mod.__all__)
        assert "DetectorStall" in errors_mod.__all__
        assert "FaultInjectionError" in errors_mod.__all__

    def test_new_errors_are_repro_errors(self):
        assert issubclass(DetectorStall, ReproError)
        assert issubclass(FaultInjectionError, ReproError)


# ----------------------------------------------------------------------
# System-level fault schedules
# ----------------------------------------------------------------------

def _run_counter_under_faults(plan, **config_kwargs):
    config = LaserConfig(check_interval_cycles=10_000, **config_kwargs)
    program = make_counter_program(iters=2000, use_addm=True)
    laser = Laser(config, faults=plan)
    machine = Machine(program, seed=config.seed)

    class _Built:
        def __init__(self, program):
            self.program = program
            self.allocator = None

        def apply_init(self, machine):
            pass

    return laser.run_built(_Built(program))


class TestPebsFaults:
    def test_total_record_drop_blinds_but_does_not_crash(self):
        plan = FaultPlan().add("pebs.record_drop", probability=1.0)
        result = _run_counter_under_faults(plan)
        assert result.health.records_lost > 0
        assert result.health.degraded
        assert result.driver.records_forwarded == 0
        assert not result.report.lines  # blind detector: nothing reported
        assert not result.repaired

    def test_record_corruption_is_counted_and_survived(self):
        plan = FaultPlan(seed=5).add("pebs.record_corrupt", probability=0.5)
        result = _run_counter_under_faults(plan)
        assert result.health.records_corrupted > 0
        assert result.health.degraded
        assert result.cycles > 0  # completed

    def test_driver_overflow_site_reaches_health(self):
        plan = FaultPlan().add("driver.outbox_overflow", probability=1.0)
        result = _run_counter_under_faults(plan)
        assert result.health.records_dropped > 0
        assert result.driver.records_forwarded == 0


class TestDetectorStalls:
    def test_stall_and_resync_are_accounted(self):
        plan = FaultPlan().add("detector.stall", at=[1, 2])
        result = _run_counter_under_faults(plan)
        assert result.health.detector_stalls == 2
        assert result.health.detector_restarts >= 1
        assert result.cycles > 0

    def test_stalled_windows_do_not_lose_records_within_outbox_bound(self):
        """With repair off (detection passive), a stall only *delays*.

        The stalled poll leaves records in the bounded outbox; the next
        healthy poll resyncs, so end-to-end record flow matches the
        unstalled run exactly.  (With repair on, a stall may shift the
        attach point and legitimately change the run.)
        """
        plan = FaultPlan().add("detector.stall", at=[1])
        result = _run_counter_under_faults(plan, repair_enabled=False)
        healthy = _run_counter_under_faults(FaultPlan(),
                                            repair_enabled=False)
        assert result.health.detector_stalls == 1
        assert (result.driver.records_forwarded
                == healthy.driver.records_forwarded)
        assert result.health.records_dropped == 0
        assert result.cycles == healthy.cycles


class TestRepairErrorBackoff:
    def test_injected_repair_error_is_retried_with_backoff(self):
        plan = FaultPlan().add("repair.error", at=[0, 1])
        result = _run_counter_under_faults(plan)
        assert result.health.repair_errors >= 1
        assert result.cycles > 0
        healthy = _run_counter_under_faults(FaultPlan())
        if healthy.repaired:
            # The run recovered: repair still landed after the backoff
            # unless the program finished before the retry window.
            assert result.repaired or result.cycles <= healthy.cycles * 2


class TestHtmAbortStorm:
    def test_abort_storm_activates_per_store_fallback(self):
        plan = FaultPlan().add("htm.abort", probability=1.0)
        result = _run_counter_under_faults(plan)
        assert result.cycles > 0
        if result.repaired:
            assert result.health.injected_htm_aborts > 0
            assert result.health.ssb_fallback_activations >= 1

    def test_mp_litmus_holds_under_forced_fallback(self):
        """Message passing stays TSO-correct on the per-store path."""
        from test_tso import message_passing_program

        for seed in range(10):
            program = message_passing_program()
            plan = FaultPlan(seed=seed).add("htm.abort", probability=1.0)
            machine = Machine(program, seed=seed,
                              fault_injector=FaultInjector(plan))
            pcs = {
                inst.pc
                for inst in program.threads[0].instructions
                if inst.op is Opcode.STORE
            }
            repairer = LaserRepair(min_stores_per_flush=0.0)
            repair_plan = repairer.plan(program, pcs)
            repairer.attach(machine, repair_plan)
            machine.run()
            flag_seen = machine.cores[1].registers[3]
            data_read = machine.cores[1].registers[4]
            if flag_seen:
                assert data_read == 42
            ssb = machine.cores[0].ssb
            if ssb.stats.flushes:
                assert ssb.fallback_active
                assert ssb.stats.fallback_activations == 1
                assert ssb.stats.fallback_stores > 0


# ----------------------------------------------------------------------
# Watchdog rollback + negative control
# ----------------------------------------------------------------------

class TestWatchdogRollback:
    def test_rollback_detaches_when_contention_shifts(self):
        result = Laser(SHIFT_CONFIG).run_built(build_shifted_workload())
        assert result.rolled_back
        assert result.health.rollbacks == 1
        assert not result.repaired
        machine = result.machine
        # Rollback restored the original program: no SSB opcodes, no SSBs.
        assert all(core.ssb is None for core in machine.cores)
        for ops in _core_opcodes(machine):
            assert not (ops & SSB_OPCODES)
        for tid, thread in enumerate(result.repair_plan.program.threads):
            assert ([i.op for i in machine.cores[tid].instructions]
                    == [i.op for i in thread.instructions])
        # The detached buffers kept their stats for health accounting.
        assert len(result.repair_plan.detached_buffers) == 2

    def test_negative_control_disabled_rollback_stays_attached_and_slower(self):
        config = SHIFT_CONFIG.replace(rollback_enabled=False)
        rolled = Laser(SHIFT_CONFIG).run_built(build_shifted_workload())
        stuck = Laser(config).run_built(build_shifted_workload())
        assert rolled.rolled_back
        assert not stuck.rolled_back
        assert stuck.repaired
        assert stuck.health.rollbacks == 0
        # Still attached: SSBs live on the instrumented threads and the
        # injected opcodes are still in the executing code.
        instrumented = stuck.repair_plan.threads_instrumented
        assert instrumented == [0, 1]
        for tid in instrumented:
            core = stuck.machine.cores[tid]
            assert core.ssb is not None
            assert {i.op for i in core.instructions} & SSB_OPCODES
        # ...and dragging dead instrumentation through the shifted phase
        # is measurably slower than rolling it back.
        assert stuck.cycles > rolled.cycles * 1.2


class TestDetachEquivalence:
    def test_attach_detach_is_observationally_equivalent(self):
        """attach + detach mid-run == never instrumented (single thread)."""
        iters = 400
        reference = make_counter_program(num_threads=1, iters=iters,
                                         use_addm=True)
        ref_machine = Machine(reference, seed=0)
        ref_machine.run()

        program = make_counter_program(num_threads=1, iters=iters,
                                       use_addm=True)
        machine = Machine(program, seed=0)
        pcs = {
            inst.pc
            for inst in program.threads[0].instructions
            if inst.op is Opcode.ADDM
        }
        repairer = LaserRepair(min_stores_per_flush=0.0)
        plan = repairer.plan(program, pcs)
        repairer.attach(machine, plan)
        machine.run(until_cycle=machine.cycle + 2000)  # mid-loop
        assert machine.cores[0].state is not CoreState.HALTED
        repairer.detach(machine, plan)
        assert machine.cores[0].ssb is None
        assert ([i.op for i in machine.cores[0].instructions]
                == [i.op for i in program.threads[0].instructions])
        machine.run()

        counter_addr = 0x10000040
        assert (machine.memory.read(counter_addr, 8)
                == ref_machine.memory.read(counter_addr, 8)
                == iters)
        assert plan.detached_buffers and repairer.plans_detached == 1


# ----------------------------------------------------------------------
# Golden: an empty fault plan is observationally free
# ----------------------------------------------------------------------

GOLDEN = {
    "histogram'": (174689, True),
    "linear_regression": (460750, True),
    "kmeans": (694966, False),
}


class TestGoldenEmptyPlan:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_empty_plan_matches_seed_behavior(self, name):
        cycles, repaired = GOLDEN[name]
        result = Laser(LaserConfig(),
                       faults=FaultPlan(seed=99)).run_workload(
            get_workload(name)
        )
        assert result.cycles == cycles
        assert result.repaired is repaired
        assert not result.health.degraded
        assert result.health.faults_injected == 0

    def test_no_plan_and_empty_plan_are_bit_identical(self):
        workload = get_workload("histogram'")
        bare = Laser(LaserConfig()).run_workload(workload)
        planned = Laser(LaserConfig(), faults=FaultPlan(seed=7)).run_workload(
            workload
        )
        assert bare.cycles == planned.cycles
        assert bare.repaired == planned.repaired
        assert bare.report.render() == planned.report.render()
        assert bare.pmu.total_hitm_count == planned.pmu.total_hitm_count
        assert bare.health == planned.health


# ----------------------------------------------------------------------
# Property sweep: any fault schedule completes with a report
# ----------------------------------------------------------------------

SWEEP_WORKLOADS = ["histogram'", "histogram", "linear_regression"]


@pytest.mark.faults
class TestFaultScheduleSweep:
    @pytest.mark.parametrize("seed", range(50))
    def test_random_schedule_completes_with_coherent_health(self, seed):
        name = SWEEP_WORKLOADS[seed % len(SWEEP_WORKLOADS)]
        plan = FaultPlan.random(seed, max_probability=0.2)
        result = Laser(LaserConfig(), faults=plan).run_workload(
            get_workload(name)
        )
        health = result.health
        assert result.cycles > 0
        assert result.report is not None
        for field in RunHealth._FIELDS:
            assert getattr(health, field) >= 0
        # Injected faults are tallied consistently with the per-site
        # counters the injector kept.
        assert health.faults_injected >= (
            health.records_lost
            + health.records_corrupted
            + health.detector_stalls
            + health.injected_htm_aborts
        )
        assert health.detector_restarts <= health.detector_stalls
        if health.faults_injected:
            assert health.degraded or health.repair_rejections
